(* Tests for the load-generation subsystem: the log-bucketed latency
   histogram (merge associativity, bounded relative error), the value-
   size and key-popularity distributions, the YCSB mix sampler, the
   SLO-driven saturation search, the open-loop driver's determinism,
   and the BENCH_loadgen.json schema check. *)

open Amoeba_loadgen
module Keygen = Amoeba_service.Keygen

(* ---------- histogram ---------- *)

let hist_of values =
  let h = Histogram.create () in
  List.iter (Histogram.add h) values;
  h

let floats_gen = QCheck.(list_of_size Gen.(int_range 0 200) (pos_float))

(* Keep generated latencies inside the histogram's full-resolution
   range [1e-3 .. 1e7] ms; the error bound is only promised there. *)
let clamp_ms x =
  let x = Float.abs x in
  Float.max 0.01 (Float.min 1.0e6 (if Float.is_nan x then 1.0 else x))

let prop_merge_associative =
  QCheck.Test.make ~name:"histogram merge is associative and exact" ~count:50
    QCheck.(triple floats_gen floats_gen floats_gen)
    (fun (xs, ys, zs) ->
      let xs = List.map clamp_ms xs
      and ys = List.map clamp_ms ys
      and zs = List.map clamp_ms zs in
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      let l = Histogram.merge (Histogram.merge a b) c in
      let r = Histogram.merge a (Histogram.merge b c) in
      Histogram.buckets l = Histogram.buckets r
      && Histogram.count l = List.length xs + List.length ys + List.length zs
      && (Histogram.count l = 0
         || Histogram.min_value l = Histogram.min_value r
            && Histogram.max_value l = Histogram.max_value r
            && Histogram.mean l = Histogram.mean r))

let exact_percentile sorted p =
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int n))) in
  sorted.(rank - 1)

let prop_percentile_error =
  QCheck.Test.make
    ~name:"histogram percentiles are within one bucket of exact" ~count:100
    floats_gen
    (fun xs ->
      let xs = List.map clamp_ms xs in
      match xs with
      | [] -> true
      | _ ->
          let h = hist_of xs in
          let sorted = Array.of_list (List.sort compare xs) in
          let gamma = Histogram.gamma h in
          List.for_all
            (fun p ->
              let approx = Histogram.percentile h p in
              let exact = exact_percentile sorted p in
              (* The bucket's upper edge over-reports by at most a
                 factor gamma; clamping to [min, max] never makes it
                 worse. *)
              approx >= exact *. 0.999999 && approx <= (exact *. gamma) +. 1e-9)
            [ 1.0; 50.0; 90.0; 95.0; 99.0; 100.0 ])

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Histogram.mean h));
  Alcotest.(check bool)
    "percentile nan" true
    (Float.is_nan (Histogram.percentile h 99.0))

let test_histogram_gamma_mismatch () =
  let a = Histogram.create ~gamma:1.02 () in
  let b = Histogram.create ~gamma:1.05 () in
  Alcotest.check_raises "merge rejects mixed gammas"
    (Invalid_argument "Histogram.merge: gamma mismatch") (fun () ->
      ignore (Histogram.merge a b))

(* ---------- value-size distributions ---------- *)

let test_dist_parse () =
  let rt s =
    match Dist.of_string s with
    | Ok d -> Alcotest.(check string) ("round-trip " ^ s) s (Dist.to_string d)
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  rt "fixed:32";
  rt "uniform:16:256";
  List.iter
    (fun s ->
      match Dist.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ ""; "fixed"; "fixed:x"; "uniform:9"; "gauss:3" ]

let test_dist_draw_ranges () =
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 1_000 do
    Alcotest.(check int) "fixed" 32 (Dist.draw (Dist.Fixed 32) rng);
    let u = Dist.draw (Dist.Uniform (16, 256)) rng in
    if u < 16 || u > 256 then Alcotest.failf "uniform out of range: %d" u;
    let l = Dist.draw (Dist.Lognormal (64.0, 1.0)) rng in
    if l < 1 then Alcotest.failf "lognormal < 1: %d" l
  done

let test_dist_lognormal_median () =
  (* The sample median of a lognormal is its [median] parameter. *)
  let rng = Random.State.make [| 7 |] in
  let n = 20_000 in
  let xs =
    Array.init n (fun _ -> Dist.draw (Dist.Lognormal (64.0, 1.0)) rng)
  in
  Array.sort compare xs;
  let med = float_of_int xs.(n / 2) in
  if med < 55.0 || med > 75.0 then
    Alcotest.failf "lognormal sample median %.1f far from 64" med

(* ---------- mixes ---------- *)

let test_mix_ratios () =
  let rng = Random.State.make [| 3 |] in
  let n = 50_000 in
  let count mix kind =
    let c = ref 0 in
    let rng = Random.State.copy rng in
    for _ = 1 to n do
      if Mix.draw mix rng = kind then incr c
    done;
    float_of_int !c /. float_of_int n
  in
  let near what want got =
    if Float.abs (got -. want) > 0.02 then
      Alcotest.failf "%s: wanted %.3f got %.3f" what want got
  in
  near "ycsb-b reads" 0.95 (count Mix.ycsb_b Mix.Read);
  near "ycsb-c reads" 1.0 (count Mix.ycsb_c Mix.Read);
  near "ycsb-d inserts" 0.05 (count Mix.ycsb_d Mix.Insert);
  let m = Mix.with_txn Mix.ycsb_a ~size_hint:3 0.2 in
  near "txn share" 0.2 (count m Mix.Txn);
  near "reads untouched" 0.5 (count m Mix.Read)

let test_mix_with_txn_overflow () =
  (* ycsb-d has 0.95 reads + 0.05 inserts and no update share; 0.98
     exceeds everything with_txn may take from. *)
  match Mix.with_txn Mix.ycsb_d ~size_hint:3 0.98 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "with_txn must reject ratio > available mass"

(* ---------- key-popularity shapes (shared Keygen) ---------- *)

let freqs gen rng keys n =
  let hits = Array.make keys 0 in
  for _ = 1 to n do
    let k = Keygen.sample gen rng in
    if k < keys then hits.(k) <- hits.(k) + 1
  done;
  hits

let test_zipf_shape () =
  let keys = 1_000 in
  let gen = Keygen.create ~keys (Keygen.Zipf 0.99) in
  let rng = Random.State.make [| 5 |] in
  let hits = freqs gen rng keys 50_000 in
  (* Zipf 0.99: key 0 draws ~13 % of the mass; a uniform sampler
     would give every key 0.1 %. *)
  if hits.(0) < 20 * hits.(500) then
    Alcotest.failf "zipf head not hot: hits(0)=%d hits(500)=%d" hits.(0)
      hits.(500);
  let head = Array.sub hits 0 10 and tail = Array.sub hits 500 10 in
  let sum a = Array.fold_left ( + ) 0 a in
  if sum head <= 5 * sum tail then
    Alcotest.failf "zipf mass not front-loaded: head=%d tail=%d" (sum head)
      (sum tail)

let test_latest_follows_frontier () =
  let keys = 100 in
  let gen = Keygen.create ~keys (Keygen.Latest 0.99) in
  let rng = Random.State.make [| 9 |] in
  (* Advance the frontier by 50 inserts; samples must now concentrate
     on the newly inserted keys, newest first. *)
  for _ = 1 to 50 do
    ignore (Keygen.insert gen)
  done;
  Alcotest.(check int) "frontier" 150 (Keygen.frontier gen);
  let hits = freqs gen rng 150 20_000 in
  let newest = Array.sub hits 140 10 and oldest = Array.sub hits 0 10 in
  let sum a = Array.fold_left ( + ) 0 a in
  if sum newest <= 5 * sum oldest then
    Alcotest.failf "latest not frontier-hot: newest=%d oldest=%d" (sum newest)
      (sum oldest)

let test_keygen_deterministic () =
  let draw seed =
    let gen = Keygen.create ~keys:500 (Keygen.Zipf 0.99) in
    let rng = Random.State.make [| seed |] in
    List.init 100 (fun _ -> Keygen.sample gen rng)
  in
  Alcotest.(check (list int)) "same seed, same stream" (draw 4) (draw 4);
  if draw 4 = draw 5 then Alcotest.fail "different seeds should diverge"

(* ---------- saturation search ---------- *)

(* A pure synthetic service: p99 rises linearly with rate, so the SLO
   knee is exactly slo * 100 ops/s. *)
let linear_service rate =
  {
    Saturation.m_p99_ms = rate /. 100.0;
    m_completion = 1.0;
    m_throughput = rate;
  }

let slo = { Saturation.p99_ms = 50.0; min_completion = 0.95 }

let test_saturation_brackets_knee () =
  let o =
    Saturation.search ~lo:50.0 ~tol:0.05 ~max_probes:40 ~slo linear_service
  in
  Alcotest.(check bool) "converged" true o.Saturation.converged;
  (* The true knee is 5000; a converged search returns a passing rate
     within one tolerance step below it. *)
  if o.Saturation.knee > 5_000.0 || o.Saturation.knee < 5_000.0 /. 1.05 then
    Alcotest.failf "knee %.1f outside [%.1f, 5000]" o.Saturation.knee
      (5_000.0 /. 1.05);
  List.iter
    (fun (p : Saturation.probe) ->
      Alcotest.(check bool)
        "pass iff under SLO"
        (p.Saturation.rate <= 5_000.0)
        p.Saturation.pass)
    o.Saturation.probes

let test_saturation_floor_fail () =
  let o =
    Saturation.search ~lo:50.0 ~slo (fun _ ->
        { Saturation.m_p99_ms = nan; m_completion = 0.0; m_throughput = 0.0 })
  in
  Alcotest.(check bool) "not converged" false o.Saturation.converged;
  Alcotest.(check (float 0.0)) "knee 0" 0.0 o.Saturation.knee;
  Alcotest.(check int) "one probe" 1 (List.length o.Saturation.probes)

let test_saturation_deterministic () =
  let run () =
    let o =
      Saturation.search ~lo:50.0 ~tol:0.05 ~max_probes:40 ~slo linear_service
    in
    List.map (fun (p : Saturation.probe) -> p.Saturation.rate)
      o.Saturation.probes
  in
  Alcotest.(check (list (float 0.0))) "same probe sequence" (run ()) (run ())

(* ---------- driver determinism (tiny real trial) ---------- *)

let tiny_config =
  {
    Driver.default with
    Driver.hosts = 4;
    routers = 2;
    mix = Mix.with_txn Mix.ycsb_a ~size_hint:3 0.1;
    keys = 100;
    duration = Amoeba_sim.Time.ms 300;
    warmup = Amoeba_sim.Time.ms 100;
  }

let test_driver_deterministic () =
  let t1 = Driver.run tiny_config ~rate:400.0 in
  let t2 = Driver.run tiny_config ~rate:400.0 in
  Alcotest.(check int) "attempted" t1.Driver.attempted t2.Driver.attempted;
  Alcotest.(check int) "completed" t1.Driver.completed t2.Driver.completed;
  Alcotest.(check (float 0.0)) "p99" t1.Driver.p99_ms t2.Driver.p99_ms;
  Alcotest.(check (float 0.0)) "mean" t1.Driver.mean_ms t2.Driver.mean_ms;
  if t1.Driver.completed = 0 then Alcotest.fail "trial completed nothing";
  if t1.Driver.txns = 0 then Alcotest.fail "mix should have produced txns"

(* ---------- BENCH_loadgen.json schema ---------- *)

let sample_rows params =
  [
    {
      Report.shards = 1;
      hosts = 4;
      routers = 2;
      net = "ether";
      outcome =
        Saturation.search ~lo:50.0 ~tol:0.1 ~max_probes:20
          ~slo:params.Report.slo linear_service;
    };
  ]

let test_report_schema_ok () =
  let params = Report.default_params ~smoke:true in
  match Report.validate (Report.to_json params (sample_rows params)) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid document rejected: %s" e

let drop_field name = function
  | Bench_json.Obj fields ->
      Bench_json.Obj (List.filter (fun (n, _) -> n <> name) fields)
  | j -> j

let test_report_schema_missing_fields () =
  let params = Report.default_params ~smoke:true in
  let doc = Report.to_json params (sample_rows params) in
  let expect_error what doc =
    match Report.validate doc with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s should fail the schema check" what
  in
  expect_error "missing schema tag" (drop_field "schema" doc);
  expect_error "missing rows" (drop_field "rows" doc);
  expect_error "missing slo" (drop_field "slo_p99_ms" doc);
  (match doc with
  | Bench_json.Obj fields ->
      let broken =
        List.map
          (fun (n, v) ->
            if n <> "rows" then (n, v)
            else
              match v with
              | Bench_json.List rows ->
                  (n, Bench_json.List (List.map (drop_field "converged") rows))
              | v -> (n, v))
          fields
      in
      expect_error "row missing converged" (Bench_json.Obj broken)
  | _ -> Alcotest.fail "to_json did not return an object");
  expect_error "not an object" (Bench_json.List [])

let suite =
  ( "loadgen",
    [
      QCheck_alcotest.to_alcotest prop_merge_associative;
      QCheck_alcotest.to_alcotest prop_percentile_error;
      Alcotest.test_case "histogram: empty" `Quick test_histogram_empty;
      Alcotest.test_case "histogram: gamma mismatch" `Quick
        test_histogram_gamma_mismatch;
      Alcotest.test_case "dist: parse round-trip" `Quick test_dist_parse;
      Alcotest.test_case "dist: draw ranges" `Quick test_dist_draw_ranges;
      Alcotest.test_case "dist: lognormal median" `Quick
        test_dist_lognormal_median;
      Alcotest.test_case "mix: sampled ratios" `Quick test_mix_ratios;
      Alcotest.test_case "mix: with_txn overflow" `Quick
        test_mix_with_txn_overflow;
      Alcotest.test_case "keygen: zipf shape" `Quick test_zipf_shape;
      Alcotest.test_case "keygen: latest follows frontier" `Quick
        test_latest_follows_frontier;
      Alcotest.test_case "keygen: deterministic" `Quick
        test_keygen_deterministic;
      Alcotest.test_case "saturation: brackets the knee" `Quick
        test_saturation_brackets_knee;
      Alcotest.test_case "saturation: floor fail" `Quick
        test_saturation_floor_fail;
      Alcotest.test_case "saturation: deterministic" `Quick
        test_saturation_deterministic;
      Alcotest.test_case "driver: deterministic trial" `Slow
        test_driver_deterministic;
      Alcotest.test_case "report: schema accepts valid" `Quick
        test_report_schema_ok;
      Alcotest.test_case "report: schema rejects missing fields" `Quick
        test_report_schema_missing_fields;
    ] )
