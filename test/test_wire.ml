(* Conformance tests for the protocol's size accounting: the paper is
   specific about header bytes (116 in total for a 0-byte message) and
   about which messages carry payload. *)

open Amoeba_net
open Amoeba_core
module T = Types

let c = Cost_model.default

let user_msg payload =
  Wire.Req
    { sender = 1; msgid = 1; piggy = 0; inc = 0; ops = 1; payload = T.User payload }

(* Uniform accounting: scalar fields are 4-byte words, addresses 8
   bytes, flags 1 byte, on top of the fixed 28-byte group envelope. *)

let test_data_sizes () =
  (* group header 28 + sender/msgid/piggy/inc 16 + user header 32 *)
  Alcotest.(check int) "0-byte request" 76 (Wire.size c (user_msg Bytes.empty));
  Alcotest.(check int) "1 KB request" (76 + 1024)
    (Wire.size c (user_msg (Bytes.create 1024)));
  let data =
    Wire.Data
      { seq = 9; sender = 1; msgid = 1; inc = 0; ops = 1; payload = T.User Bytes.empty;
        needs_accept = false }
  in
  (* Data trades piggy for seq and adds the accept flag byte. *)
  Alcotest.(check int) "data framing is request + flag" 77 (Wire.size c data)

let test_control_messages_are_short () =
  (* The paper: protocol header size independent of group size, and
     the accept is a short message.  Control messages now charge their
     scalar fields, but stay well under a payload-bearing frame. *)
  let accept = Wire.Accept { seq = 1; sender = 0; msgid = 1; inc = 0 } in
  let nack = Wire.Nack { from = 1; expected = 5; piggy = 4; inc = 0 } in
  let ack = Wire.Ack_tent { seq = 1; from = 2; inc = 0 } in
  List.iter
    (fun (m, fields) ->
      Alcotest.(check int) (Wire.describe m)
        (c.header_group + (4 * fields))
        (Wire.size c m))
    [ (accept, 4); (nack, 4); (ack, 3) ];
  (* Uniformity across control/membership messages that carry
     addresses: an invite and a join request both charge the 8-byte
     address they carry. *)
  let addr = Amoeba_flip.Addr.of_int 3 in
  Alcotest.(check int) "invite = 2 words + addr"
    (c.header_group + 8 + 8)
    (Wire.size c (Wire.Invite { inc = 1; coord = 0; coord_addr = addr }));
  Alcotest.(check int) "join_req = addr" (c.header_group + 8)
    (Wire.size c (Wire.Join_req { kaddr = addr }));
  Alcotest.(check int) "fetch = 2 words" (c.header_group + 8)
    (Wire.size c (Wire.Fetch { from_seq = 1; upto = 5 }))

let test_full_header_stack_is_116 () =
  (* Ethernet 14 + flow control 2 + FLIP 40 + group 28 + user 32. *)
  Alcotest.(check int) "headers" 116 (Cost_model.headers_total c);
  let above_flip = Wire.size c (user_msg Bytes.empty) in
  let on_wire =
    above_flip + c.header_ether + c.header_flow_control + c.header_flip
  in
  (* The 116 header bytes plus the request's four scalar fields. *)
  Alcotest.(check int) "0-byte message on the wire" (116 + 16) on_wire

let test_membership_payload_scales_with_members () =
  let members n = List.init n (fun i -> (i, Amoeba_flip.Addr.of_int i)) in
  let reply n =
    Wire.size c
      (Wire.Join_reply
         { mid = 0; inc = 0; next_seq = 0; members = members n; seq_mid = 0 })
  in
  Alcotest.(check bool) "grows with membership" true (reply 10 > reply 2);
  Alcotest.(check int) "12 bytes per member" (8 * 12) (reply 10 - reply 2)

let test_decode_total () =
  (* decode never raises and never interprets damaged bytes: a body
     wrapped in [Packet.Corrupt] fails the group checksum whatever it
     used to be, and traffic of other protocols is [`Foreign]. *)
  let msg = user_msg Bytes.empty in
  Alcotest.(check bool) "intact group message decodes" true
    (Wire.decode (Wire.Group msg) = Ok msg);
  Alcotest.(check bool) "corrupt group message rejected" true
    (Wire.decode (Amoeba_flip.Packet.Corrupt (Wire.Group msg)) = Error `Corrupt);
  Alcotest.(check bool) "doubly-wrapped corruption still rejected" true
    (Wire.decode
       (Amoeba_flip.Packet.Corrupt (Amoeba_flip.Packet.Corrupt (Wire.Group msg)))
    = Error `Corrupt);
  Alcotest.(check bool) "foreign body is foreign" true
    (Wire.decode Amoeba_flip.Packet.Empty = Error `Foreign);
  Alcotest.(check bool) "corrupt foreign body stays foreign" true
    (Wire.decode (Amoeba_flip.Packet.Corrupt Amoeba_flip.Packet.Empty)
    = Error `Foreign)

let test_invite_ack_carries_position () =
  (* The recovery protocol compares positions across incarnations, so
     an invite-ack charges five scalar fields. *)
  let ack =
    Wire.Invite_ack
      { mid = 1; last_stable = 9; inc = 2; cur_inc = 1; inc_seq = 4 }
  in
  Alcotest.(check int) "invite_ack = 5 words" (c.header_group + 20)
    (Wire.size c ack)

let test_describe_covers_all () =
  (* describe is used in logs; spot-check a few. *)
  Alcotest.(check string) "req" "req" (Wire.describe (user_msg Bytes.empty));
  Alcotest.(check string) "status" "status"
    (Wire.describe (Wire.Status { from = 0; piggy = 0; inc = 0 }));
  Alcotest.(check string) "invite" "invite"
    (Wire.describe
       (Wire.Invite { inc = 1; coord = 0; coord_addr = Amoeba_flip.Addr.of_int 1 }))

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "wire",
    [
      tc "data message sizes" test_data_sizes;
      tc "control messages are header-only" test_control_messages_are_short;
      tc "full header stack is 116 bytes" test_full_header_stack_is_116;
      tc "membership payload scales" test_membership_payload_scales_with_members;
      tc "decode is total on malformed input" test_decode_total;
      tc "invite_ack carries stream position" test_invite_ack_carries_position;
      tc "describe labels" test_describe_covers_all;
    ] )
