(* Tests for the discrete-event engine and its blocking primitives. *)

open Amoeba_sim

let test_clock_starts_at_zero () =
  let eng = Engine.create () in
  Alcotest.(check int) "clock" 0 (Engine.now eng)

let test_schedule_order () =
  let eng = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule eng ~after:30 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule eng ~after:10 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule eng ~after:20 (fun () -> log := 2 :: !log));
  Engine.run eng;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log)

let test_same_time_fifo () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule eng ~after:7 (fun () -> log := i :: !log))
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule eng ~after:5 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run eng;
  Alcotest.(check bool) "cancelled" false !fired

let test_clock_advances () =
  let eng = Engine.create () in
  let seen = ref 0 in
  ignore (Engine.schedule eng ~after:Time.(us 42) (fun () -> seen := Engine.now eng));
  Engine.run eng;
  Alcotest.(check int) "time" 42_000 !seen

let test_run_until () =
  let eng = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule eng ~after:100 (fun () -> fired := true));
  Engine.run ~until:50 eng;
  Alcotest.(check bool) "not yet" false !fired;
  Alcotest.(check int) "clock clamped" 50 (Engine.now eng)

let test_sleep_sequence () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.spawn eng (fun () ->
      Engine.sleep eng 10;
      log := Engine.now eng :: !log;
      Engine.sleep eng 15;
      log := Engine.now eng :: !log);
  Engine.run eng;
  Alcotest.(check (list int)) "wakeups" [ 10; 25 ] (List.rev !log)

let test_spawn_exception_propagates () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      Engine.sleep eng 5;
      failwith "boom");
  Alcotest.check_raises "propagates" (Failure "boom") (fun () ->
      Engine.run eng)

let test_two_processes_interleave () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.spawn eng (fun () ->
      Engine.sleep eng 10;
      log := "a10" :: !log;
      Engine.sleep eng 20;
      log := "a30" :: !log);
  Engine.spawn eng (fun () ->
      Engine.sleep eng 15;
      log := "b15" :: !log;
      Engine.sleep eng 20;
      log := "b35" :: !log);
  Engine.run eng;
  Alcotest.(check (list string))
    "interleaving"
    [ "a10"; "b15"; "a30"; "b35" ]
    (List.rev !log)

let test_ivar_blocks_until_filled () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  let at = ref 0 in
  Engine.spawn eng (fun () ->
      got := Ivar.read eng iv;
      at := Engine.now eng);
  Engine.spawn eng (fun () ->
      Engine.sleep eng 100;
      Ivar.fill iv 42);
  Engine.run eng;
  Alcotest.(check int) "value" 42 !got;
  Alcotest.(check int) "woken at fill time" 100 !at

let test_ivar_already_full () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  Ivar.fill iv "x";
  let got = ref "" in
  Engine.spawn eng (fun () -> got := Ivar.read eng iv);
  Engine.run eng;
  Alcotest.(check string) "immediate" "x" !got

let test_ivar_double_fill_raises () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  Alcotest.(check bool) "try_fill refuses" false (Ivar.try_fill iv 2);
  Alcotest.check_raises "fill raises"
    (Invalid_argument "Ivar.fill: already filled") (fun () -> Ivar.fill iv 3)

let test_ivar_multiple_readers () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let woken = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        ignore (Ivar.read eng iv);
        woken := i :: !woken)
  done;
  Engine.spawn eng (fun () ->
      Engine.sleep eng 10;
      Ivar.fill iv ());
  Engine.run eng;
  Alcotest.(check (list int)) "all woken in order" [ 1; 2; 3 ] (List.rev !woken)

let test_channel_fifo () =
  let eng = Engine.create () in
  let ch = Channel.create () in
  let got = ref [] in
  Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        got := Channel.recv eng ch :: !got
      done);
  Engine.spawn eng (fun () ->
      Channel.send ch 1;
      Channel.send ch 2;
      Channel.send ch 3);
  Engine.run eng;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_channel_blocking_recv () =
  let eng = Engine.create () in
  let ch = Channel.create () in
  let at = ref (-1) in
  Engine.spawn eng (fun () ->
      ignore (Channel.recv eng ch);
      at := Engine.now eng);
  Engine.spawn eng (fun () ->
      Engine.sleep eng 77;
      Channel.send ch ());
  Engine.run eng;
  Alcotest.(check int) "recv completes at send" 77 !at

let test_channel_recv_timeout_expires () =
  let eng = Engine.create () in
  let ch : unit Channel.t = Channel.create () in
  let result = ref (Some ()) in
  let at = ref 0 in
  Engine.spawn eng (fun () ->
      result := Channel.recv_timeout eng ch ~timeout:50;
      at := Engine.now eng);
  Engine.run eng;
  Alcotest.(check bool) "timed out" true (!result = None);
  Alcotest.(check int) "at deadline" 50 !at

let test_channel_recv_timeout_receives () =
  let eng = Engine.create () in
  let ch = Channel.create () in
  let result = ref None in
  Engine.spawn eng (fun () -> result := Channel.recv_timeout eng ch ~timeout:50);
  Engine.spawn eng (fun () ->
      Engine.sleep eng 10;
      Channel.send ch 9);
  Engine.run eng;
  Alcotest.(check (option int)) "received" (Some 9) !result

let test_channel_timeout_does_not_eat_wakeup () =
  (* A reader that times out must not swallow the wakeup intended for a
     live reader queued behind it. *)
  let eng = Engine.create () in
  let ch = Channel.create () in
  let timed_out = ref false in
  let got = ref 0 in
  Engine.spawn eng (fun () ->
      timed_out := Channel.recv_timeout eng ch ~timeout:10 = None);
  Engine.spawn eng (fun () ->
      Engine.sleep eng 5;
      got := Channel.recv eng ch);
  Engine.spawn eng (fun () ->
      Engine.sleep eng 50;
      Channel.send ch 123);
  Engine.run eng;
  Alcotest.(check bool) "first reader timed out" true !timed_out;
  Alcotest.(check int) "second reader got value" 123 !got

let test_resource_exclusive () =
  let eng = Engine.create () in
  let r = Resource.create eng ~name:"cpu" in
  let log = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        Resource.consume r 10;
        log := (i, Engine.now eng) :: !log)
  done;
  Engine.run eng;
  Alcotest.(check (list (pair int int)))
    "serialised fifo"
    [ (1, 10); (2, 20); (3, 30) ]
    (List.rev !log)

let test_resource_busy_time () =
  let eng = Engine.create () in
  let r = Resource.create eng ~name:"cpu" in
  Engine.spawn eng (fun () ->
      Resource.consume r 10;
      Engine.sleep eng 100;
      Resource.consume r 5);
  Engine.run eng;
  Alcotest.(check int) "busy total" 15 (Resource.busy_time r)

let test_resource_release_unheld_raises () =
  let eng = Engine.create () in
  let r = Resource.create eng ~name:"cpu" in
  Alcotest.check_raises "release unheld"
    (Invalid_argument "Resource.release: not held") (fun () ->
      Resource.release r)

let test_trace_by_layer () =
  let eng = Engine.create () in
  let tr = Trace.create () in
  Trace.enable tr;
  ignore
    (Engine.schedule eng ~after:100 (fun () ->
         Trace.record tr eng ~layer:"a" ~host:"h" 30;
         Trace.record tr eng ~layer:"b" ~host:"h" 20;
         Trace.record tr eng ~layer:"a" ~host:"h" 5));
  Engine.run eng;
  Alcotest.(check (list (pair string int)))
    "totals" [ ("a", 35); ("b", 20) ] (Trace.by_layer tr)

let test_trace_disabled_records_nothing () =
  let eng = Engine.create () in
  let tr = Trace.create () in
  Trace.record tr eng ~layer:"a" ~host:"h" 30;
  Alcotest.(check int) "no spans" 0 (List.length (Trace.spans tr))

let test_stats_basics () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 4. (Stats.max_value s);
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.percentile s 50.)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 1e-9)) "mean empty" 0. (Stats.mean s);
  Alcotest.(check (float 1e-9)) "p99 empty" 0. (Stats.percentile s 99.)

(* Regression: a percentile read caches the sorted samples; adds after
   the read must invalidate that cache, so the next p50/p95/p99 see
   the new samples — including across the internal array regrowth. *)
let test_stats_percentile_not_stale () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.; 2.; 3. ];
  Alcotest.(check (float 1e-9)) "p50 before" 2. (Stats.percentile s 50.);
  Alcotest.(check (float 1e-9)) "p99 before" 3. (Stats.percentile s 99.);
  (* Grow well past the initial 16-slot capacity after the read. *)
  for i = 4 to 100 do
    Stats.add s (float_of_int i)
  done;
  (* nearest-rank on 100 samples: round (0.5 *. 99) = 50 -> 51. *)
  Alcotest.(check (float 1e-9)) "p50 updated" 51. (Stats.percentile s 50.);
  Alcotest.(check (float 1e-9)) "p95 updated" 95. (Stats.percentile s 95.);
  Alcotest.(check (float 1e-9)) "p99 updated" 99. (Stats.percentile s 99.);
  Alcotest.(check (float 1e-9)) "max updated" 100. (Stats.max_value s)

let test_time_conversions () =
  Alcotest.(check int) "us" 1_000 (Time.us 1);
  Alcotest.(check int) "ms" 1_000_000 (Time.ms 1);
  Alcotest.(check int) "sec" 1_000_000_000 (Time.sec 1);
  Alcotest.(check (float 1e-9)) "to_ms" 2.5 (Time.to_ms 2_500_000);
  Alcotest.(check int) "of_us_float rounds" 1_500 (Time.of_us_float 1.5)

let test_suspend_resume_is_one_shot () =
  (* The registered resume function may be called many times; only the
     first call wakes the process. *)
  let eng = Engine.create () in
  let resumes = ref None in
  let wakeups = ref 0 in
  Engine.spawn eng (fun () ->
      Engine.suspend eng ~register:(fun resume -> resumes := Some resume);
      incr wakeups);
  ignore
    (Engine.schedule eng ~after:10 (fun () ->
         match !resumes with
         | Some r ->
             r ();
             r ();
             r ()
         | None -> ()));
  Engine.run eng;
  Alcotest.(check int) "woken exactly once" 1 !wakeups

let test_step_count_advances () =
  let eng = Engine.create () in
  for _ = 1 to 5 do
    ignore (Engine.schedule eng ~after:1 (fun () -> ()))
  done;
  Engine.run eng;
  Alcotest.(check int) "five events processed" 5 (Engine.step_count eng)

let test_cancelled_events_not_counted () =
  let eng = Engine.create () in
  let h = Engine.schedule eng ~after:1 (fun () -> ()) in
  ignore (Engine.schedule eng ~after:2 (fun () -> ()));
  Engine.cancel h;
  Engine.run eng;
  Alcotest.(check int) "only the live event ran" 1 (Engine.step_count eng)

(* Property tests *)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Pqueue.create ~cmp:compare in
      List.iter (Pqueue.push h) xs;
      let rec drain acc =
        match Pqueue.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let prop_stats_mean_matches_naive =
  QCheck.Test.make ~name:"stats mean matches naive mean" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let naive = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      Float.abs (Stats.mean s -. naive) < 1e-6)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine event order is deterministic" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 30) (int_bound 100))
    (fun delays ->
      let run_once () =
        let eng = Engine.create ~seed:7 () in
        let log = ref [] in
        List.iteri
          (fun i d ->
            ignore (Engine.schedule eng ~after:d (fun () -> log := i :: !log)))
          delays;
        Engine.run eng;
        !log
      in
      run_once () = run_once ())

(* Timer-wheel coverage: events spanning all three levels (l0 slots,
   l1 slots, heap overflow) must still fire in exact (time, seq)
   order, and lazy cancellation must not perturb step accounting. *)

let test_wheel_spans_levels () =
  let eng = Engine.create () in
  let log = ref [] in
  let delays =
    [
      Time.sec 2; 5; Time.ms 1; Time.us 50; Time.sec 1; 0;
      Time.ms 150; Time.us 8; Time.ms 3; Time.sec 30; Time.ms 150;
    ]
  in
  List.iteri
    (fun i d ->
      ignore
        (Engine.schedule eng ~after:d (fun () ->
             log := (i, Engine.now eng) :: !log)))
    delays;
  Engine.run eng;
  let fired = List.rev !log in
  let expect =
    List.mapi (fun i d -> (d, i)) delays
    |> List.sort compare
    |> List.map (fun (d, i) -> (i, d))
  in
  Alcotest.(check (list (pair int int))) "(index, time) in (time, seq) order"
    expect fired

let test_wheel_heavy_cancellation () =
  let eng = Engine.create () in
  let fired = ref 0 in
  let handles =
    Array.init 1000 (fun _ ->
        Engine.schedule eng ~after:(Time.ms 100) (fun () -> incr fired))
  in
  (* Cancelling 990 of 1000 crosses the sweep threshold (cancelled *
     2 > size), so the purge path runs too. *)
  Array.iteri (fun i h -> if i mod 100 <> 0 then Engine.cancel h) handles;
  Engine.run eng;
  Alcotest.(check int) "only live timers fired" 10 !fired;
  Alcotest.(check int) "cancelled events not stepped" 10 (Engine.step_count eng)

let test_wheel_cancelled_accounting () =
  let w = Timer_wheel.create () in
  let g = Timer_wheel.make_group ~gid:0 ~label:"test" in
  let evs =
    List.init 10 (fun i ->
        Timer_wheel.schedule w ~time:(1000 * (i + 1)) ~seq:i ~group:g (fun () ->
            ()))
  in
  List.iteri (fun i e -> if i < 5 then Timer_wheel.cancel e) evs;
  (* Cancelling twice, or after the fact, must not double-count. *)
  List.iteri (fun i e -> if i < 5 then Timer_wheel.cancel e) evs;
  Alcotest.(check int) "cancelled pending" 5 (Timer_wheel.cancelled_pending w);
  Alcotest.(check int) "length includes cancelled" 10 (Timer_wheel.length w);
  let live = ref 0 in
  let rec drain () =
    match Timer_wheel.pop w with
    | None -> ()
    | Some e ->
        if not e.Timer_wheel.cancelled then incr live;
        Timer_wheel.cancel e;
        (* cancel after pop: no-op *)
        drain ()
  in
  drain ();
  Alcotest.(check int) "live events survived" 5 !live;
  Alcotest.(check int) "accounting drained" 0 (Timer_wheel.cancelled_pending w);
  Alcotest.(check bool) "empty" true (Timer_wheel.is_empty w)

(* ----- process groups: the crash-stop unit ----- *)

let test_cancel_group_kills_pending_timers () =
  let eng = Engine.create () in
  let g = Engine.create_group eng ~label:"victim" in
  let fired = ref 0 and root_fired = ref 0 in
  for i = 1 to 5 do
    ignore (Engine.schedule ~group:g eng ~after:(i * 10) (fun () -> incr fired))
  done;
  ignore (Engine.schedule eng ~after:25 (fun () -> Engine.cancel_group eng g));
  ignore (Engine.schedule eng ~after:100 (fun () -> incr root_fired));
  Engine.run eng;
  Alcotest.(check int) "events before the cancel ran" 2 !fired;
  Alcotest.(check int) "root group unaffected" 1 !root_fired;
  Alcotest.(check bool) "group dead" false (Engine.group_alive g)

let test_cancel_group_kills_blocked_process () =
  let eng = Engine.create () in
  let g = Engine.create_group eng ~label:"victim" in
  let ch = Channel.create () in
  let got = ref None in
  Engine.spawn ~group:g eng (fun () -> got := Some (Channel.recv eng ch));
  ignore (Engine.schedule eng ~after:10 (fun () -> Engine.cancel_group eng g));
  ignore (Engine.schedule eng ~after:20 (fun () -> Channel.send ch 42));
  Engine.run eng;
  Alcotest.(check bool) "blocked process never resumed" true (!got = None)

let test_schedule_into_dead_group_is_inert () =
  let eng = Engine.create () in
  let g = Engine.create_group eng ~label:"victim" in
  Engine.cancel_group eng g;
  let fired = ref false in
  ignore (Engine.schedule ~group:g eng ~after:5 (fun () -> fired := true));
  (* with_group makes the dead group current; scheduling inherits it. *)
  Engine.with_group eng g (fun () ->
      ignore (Engine.schedule eng ~after:5 (fun () -> fired := true)));
  Engine.run eng;
  Alcotest.(check bool) "stillborn events" false !fired

let test_group_inheritance_and_accounting () =
  let eng = Engine.create () in
  let g = Engine.create_group eng ~label:"child" in
  let seen = ref [] in
  Engine.spawn ~group:g eng (fun () ->
      seen := Engine.group_label (Engine.current_group eng) :: !seen;
      (* A process spawned without an explicit group inherits its
         parent's, even across a sleep. *)
      Engine.spawn eng (fun () ->
          Engine.sleep eng 10;
          seen := Engine.group_label (Engine.current_group eng) :: !seen));
  Engine.run eng;
  Alcotest.(check (list string)) "inherited group" [ "child"; "child" ]
    (List.rev !seen);
  Alcotest.(check bool) "events accounted to the group" true
    (Engine.group_events g >= 2);
  Alcotest.(check string) "root is current outside events" "root"
    (Engine.group_label (Engine.current_group eng))

let prop_pqueue_compact =
  QCheck.Test.make ~name:"pqueue compact matches filtered sorted model"
    ~count:200
    QCheck.(list int)
    (fun xs ->
      let keep x = x land 1 = 0 in
      let h = Pqueue.create ~cmp:compare in
      List.iter (Pqueue.push h) xs;
      Pqueue.compact h ~keep;
      let rec drain acc =
        match Pqueue.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare (List.filter keep xs))

let prop_wheel_nested_scheduling =
  QCheck.Test.make
    ~name:"wheel time monotonic under nested cross-level scheduling" ~count:30
    QCheck.(pair (int_range 1 6) (int_range 1 120))
    (fun (chains, hops) ->
      let eng = Engine.create () in
      let last = ref (-1) in
      let mono = ref true in
      let count = ref 0 in
      let rec hop c k =
        let now = Engine.now eng in
        if now < !last then mono := false;
        last := now;
        incr count;
        if k > 0 then begin
          (* Deterministic pseudo-random delay; the mask alternates so
             hops land in l0, l1 and the overflow heap. *)
          let mask =
            match k mod 3 with 0 -> 0x3FFFFFFF | 1 -> 0xFFFFF | _ -> 0xFFF
          in
          let d = ((c * 7919) + (k * 104729)) * 2654435761 land mask in
          ignore (Engine.schedule eng ~after:d (fun () -> hop c (k - 1)))
        end
      in
      for c = 1 to chains do
        ignore (Engine.schedule eng ~after:c (fun () -> hop c hops))
      done;
      Engine.run eng;
      !mono && !count = chains * (hops + 1))

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "sim",
    [
      tc "clock starts at zero" test_clock_starts_at_zero;
      tc "events fire in time order" test_schedule_order;
      tc "same-time events fire fifo" test_same_time_fifo;
      tc "cancelled events do not fire" test_cancel;
      tc "clock advances to event time" test_clock_advances;
      tc "run ~until stops early" test_run_until;
      tc "sleep advances process" test_sleep_sequence;
      tc "process exception propagates" test_spawn_exception_propagates;
      tc "two processes interleave" test_two_processes_interleave;
      tc "ivar read blocks until fill" test_ivar_blocks_until_filled;
      tc "ivar read of full ivar" test_ivar_already_full;
      tc "ivar double fill" test_ivar_double_fill_raises;
      tc "ivar wakes all readers" test_ivar_multiple_readers;
      tc "channel is fifo" test_channel_fifo;
      tc "channel recv blocks" test_channel_blocking_recv;
      tc "channel recv_timeout expires" test_channel_recv_timeout_expires;
      tc "channel recv_timeout receives" test_channel_recv_timeout_receives;
      tc "channel timeout does not eat wakeups"
        test_channel_timeout_does_not_eat_wakeup;
      tc "resource serialises fifo" test_resource_exclusive;
      tc "resource tracks busy time" test_resource_busy_time;
      tc "resource release unheld" test_resource_release_unheld_raises;
      tc "trace sums by layer" test_trace_by_layer;
      tc "trace disabled is silent" test_trace_disabled_records_nothing;
      tc "stats basics" test_stats_basics;
      tc "stats empty" test_stats_empty;
      tc "stats percentile not stale" test_stats_percentile_not_stale;
      tc "time conversions" test_time_conversions;
      tc "suspend resume is one-shot" test_suspend_resume_is_one_shot;
      tc "step count advances" test_step_count_advances;
      tc "cancelled events not counted" test_cancelled_events_not_counted;
      tc "timer wheel spans all levels" test_wheel_spans_levels;
      tc "timer wheel heavy cancellation" test_wheel_heavy_cancellation;
      tc "timer wheel cancel accounting" test_wheel_cancelled_accounting;
      tc "cancel_group kills pending timers" test_cancel_group_kills_pending_timers;
      tc "cancel_group kills blocked process"
        test_cancel_group_kills_blocked_process;
      tc "schedule into dead group is inert" test_schedule_into_dead_group_is_inert;
      tc "group inheritance and accounting" test_group_inheritance_and_accounting;
      QCheck_alcotest.to_alcotest prop_pqueue_sorted;
      QCheck_alcotest.to_alcotest prop_pqueue_compact;
      QCheck_alcotest.to_alcotest prop_wheel_nested_scheduling;
      QCheck_alcotest.to_alcotest prop_stats_mean_matches_naive;
      QCheck_alcotest.to_alcotest prop_engine_deterministic;
    ] )
