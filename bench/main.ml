(* Regenerates every table and figure of the paper's evaluation
   (section 4), plus the ablations DESIGN.md calls out, on the
   simulated testbed: 30 MC68030-class machines on one 10 Mbit/s
   Ethernet.  Absolute numbers are calibrated against the paper's
   anchors; the shapes (who wins, crossovers, saturation points) come
   out of the simulation.

   Usage: main.exe [target ...] [--json] [--smoke]
   Targets: headline fig1 table3 fig3 fig4 fig5 fig6 fig7 fig8
            rpc_compare ablation_cm ablation_migrate ablation_pbbb
            ablation_processing ablation_userspace ablation_history
            ablation_flowcontrol load_latency service batch recovery
            fabric migration loadgen micro
   No arguments runs everything.

   --json   targets that support it (micro, headline, fig1, fig4,
            service, batch, recovery, fabric, migration, loadgen) also
            write a BENCH_<target>.json file (micro writes
            BENCH_sim.json; batch, recovery, fabric and migration
            write their rows into BENCH_service.json); see
            bench/README.md for the schema.
   --smoke  micro, service, batch, recovery, migration and loadgen:
            tiny parameters (and for micro, JSON to stdout instead of
            a file), so CI can exercise the perf plumbing in
            seconds. *)

open Amoeba_net
open Amoeba_harness
module T = Amoeba_core.Types
module E = Experiments

let json_mode = ref false
let smoke_mode = ref false

let json_out name fields =
  if !json_mode then
    Bench_json.write_file ("BENCH_" ^ name ^ ".json")
      (Bench_json.Obj
         (("schema", Bench_json.Str "amoeba-bench/1")
          :: ("suite", Bench_json.Str name)
          :: fields))

let line = String.make 72 '-'

let header title paper_note =
  Printf.printf "\n%s\n%s\n" line title;
  if paper_note <> "" then Printf.printf "paper: %s\n" paper_note;
  Printf.printf "%s\n%!" line

let sizes_delay = [ 0; 1024; 4096; 8000 ]
let member_counts = [ 2; 6; 10; 14; 18; 22; 26; 30 ]

let delay_figure ~send_method =
  Printf.printf "%8s |" "members";
  List.iter (fun s -> Printf.printf " %7dB" s) sizes_delay;
  Printf.printf "   (delay in ms)\n";
  let rows = ref [] in
  List.iter
    (fun n ->
      Printf.printf "%8d |" n;
      List.iter
        (fun size ->
          let r = E.broadcast_delay ~samples:12 ~n ~size ~send_method () in
          rows := (n, size, r.E.mean_ms) :: !rows;
          Printf.printf " %8.2f" r.E.mean_ms)
        sizes_delay;
      print_newline ())
    member_counts;
  List.rev !rows

let delay_rows_json rows =
  Bench_json.List
    (List.map
       (fun (n, size, ms) ->
         Bench_json.Obj
           [ ("members", Bench_json.Int n); ("size", Bench_json.Int size);
             ("mean_ms", Bench_json.Float ms) ])
       rows)

let fig1 () =
  header "Figure 1: delay for 1 sender, PB method (r = 0)"
    "0B: 2.7 ms at n=2, 2.8 ms at n=30; 8000B adds ~20 ms";
  let rows = delay_figure ~send_method:T.Pb in
  json_out "fig1" [ ("rows", delay_rows_json rows) ]

let fig3 () =
  header "Figure 3: delay for 1 sender, BB method (r = 0)"
    "0B similar to PB; large messages dramatically better (one wire crossing)";
  ignore (delay_figure ~send_method:T.Bb)

let table3 () =
  header "Figure 2 / Table 3: critical path of one 0-byte SendToGroup (group of 2, PB)"
    "total 2740 us, of which the group protocol costs 740 us";
  let layers, total = E.critical_path () in
  let sum = List.fold_left (fun a (_, v) -> a +. v) 0. layers in
  List.iter (fun (l, us) -> Printf.printf "  %-8s %7.0f us\n" l us) layers;
  Printf.printf "  %-8s %7.0f us (modelled layer sum)\n" "sum" sum;
  Printf.printf "  %-8s %7.0f us (measured end-to-end; rest is queueing)\n"
    "total" total

let sizes_tput = [ 0; 1024; 2048; 4096; 8000 ]
let sender_counts = [ 1; 2; 4; 8; 12; 16 ]

let tput_figure ~send_method =
  Printf.printf "%8s |" "senders";
  List.iter (fun s -> Printf.printf " %7dB" s) sizes_tput;
  Printf.printf "   (messages/second; * = ring overflow, not meaningful)\n";
  let rows = ref [] in
  List.iter
    (fun n ->
      Printf.printf "%8d |" n;
      List.iter
        (fun size ->
          let r = E.group_throughput ~duration_ms:1_200 ~n:(max n 2) ~size ~send_method () in
          rows := (n, size, r.E.msgs_per_sec, r.E.meaningful) :: !rows;
          Printf.printf " %7.0f%s" r.E.msgs_per_sec
            (if not r.E.meaningful then "*"
             else if r.E.rx_dropped > 0 then "!"
             else " "))
        sizes_tput;
      print_newline ())
    sender_counts;
  List.rev !rows

let fig4 () =
  header "Figure 4: throughput, PB method (group size = senders)"
    "815 msg/s max at 0B; >=4KB configurations overflow the Lance ring";
  let rows = tput_figure ~send_method:T.Pb in
  json_out "fig4"
    [ ( "rows",
        Bench_json.List
          (List.map
             (fun (n, size, tput, meaningful) ->
               Bench_json.Obj
                 [ ("senders", Bench_json.Int n); ("size", Bench_json.Int size);
                   ("msgs_per_sec", Bench_json.Float tput);
                   ("meaningful", Bench_json.Bool meaningful) ])
             rows) ) ]

let fig5 () =
  header "Figure 5: throughput, BB method (group size = senders)"
    "0B similar to PB; large messages sustain higher rates (half the bandwidth)";
  ignore (tput_figure ~send_method:T.Bb)

let fig6 () =
  header "Figure 6: aggregate throughput of disjoint parallel groups (0B, PB)"
    "3175 msg/s max with 5 groups of 2; Ethernet saturation beyond (61% util)";
  Printf.printf "%8s | %10s %10s %10s   (total msg/s; util%% for 2-member groups)\n"
    "groups" "2 members" "4 members" "8 members";
  List.iter
    (fun groups ->
      Printf.printf "%8d |" groups;
      let util = ref 0. in
      List.iter
        (fun members ->
          (* The paper's testbed had 30 machines; it could not run >3
             groups of 8 and we inherit the limit for comparability. *)
          if groups * members <= 30 then begin
            let r = E.multigroup_throughput ~duration_ms:1_200 ~groups ~members () in
            if members = 2 then util := r.E.ether_utilisation;
            Printf.printf " %10.0f" r.E.total_msgs_per_sec
          end
          else Printf.printf " %10s" "-")
        [ 2; 4; 8 ];
      Printf.printf "   util %.0f%%\n%!" (100. *. !util))
    [ 1; 2; 3; 4; 5; 6; 7 ]

let fig7 () =
  header "Figure 7: delay for 1 sender vs resilience degree (group size = r+1, PB)"
    "4.2 ms at r=1 (n=2); 12.9 ms at r=15 (n=16); ~600 us per acknowledgement";
  Printf.printf "%8s %8s %12s\n" "r" "members" "delay (ms)";
  List.iter
    (fun r ->
      let d =
        E.broadcast_delay ~samples:10 ~resilience:r ~n:(r + 1) ~size:0
          ~send_method:T.Pb ()
      in
      Printf.printf "%8d %8d %12.2f\n%!" r (r + 1) d.E.mean_ms)
    [ 1; 2; 4; 6; 8; 10; 12; 15 ]

let fig8 () =
  header "Figure 8: throughput under resilience (group size = senders, r = n-1, PB)"
    "resilient sends cost 3+r messages each; throughput falls as r grows";
  Printf.printf "%8s %8s %14s   (maximum resilience, r = n-1)\n" "members" "r"
    "msgs/second";
  List.iter
    (fun n ->
      let r =
        E.group_throughput ~duration_ms:1_200 ~resilience:(n - 1) ~n ~size:0
          ~send_method:T.Pb ()
      in
      Printf.printf "%8d %8d %14.0f\n%!" n (n - 1) r.E.msgs_per_sec)
    [ 2; 4; 8; 12; 16 ];
  Printf.printf "\n%8s %8s %14s   (fixed group of 8, varying r)\n" "members" "r"
    "msgs/second";
  List.iter
    (fun r ->
      let t =
        E.group_throughput ~duration_ms:1_200 ~resilience:r ~n:8 ~size:0
          ~send_method:T.Pb ()
      in
      Printf.printf "%8d %8d %14.0f\n%!" 8 r t.E.msgs_per_sec)
    [ 0; 1; 2; 4; 7 ]

let rpc_compare () =
  header "Section 4: group communication vs Amoeba RPC"
    "null broadcast to a group of 2 is 0.1 ms faster than a null RPC (2.7 vs 2.8)";
  let grp = (E.broadcast_delay ~samples:12 ~n:2 ~size:0 ~send_method:T.Pb ()).E.mean_ms in
  let rpc = E.null_rpc_delay_ms () in
  Printf.printf "  null broadcast (group of 2): %5.2f ms\n" grp;
  Printf.printf "  null RPC:                    %5.2f ms\n" rpc;
  Printf.printf "  broadcast is %.2f ms %s\n" (Float.abs (rpc -. grp))
    (if grp < rpc then "faster" else "slower")

let ablation_cm () =
  header "Section 6 ablation: Amoeba vs comparison protocols (group of 8, 0B)"
    "CM: 2-3 broadcasts and 2(n-1) interrupts per message vs Amoeba's 2 msgs / n interrupts;\n\
     positive acks implode at the sequencer";
  Printf.printf "%-18s %10s %10s %12s %14s\n" "protocol" "delay ms" "msgs/s"
    "frames/msg" "interrupts/msg";
  List.iter
    (fun proto ->
      let r = E.baseline_compare ~n:8 proto in
      Printf.printf "%-18s %10.2f %10.0f %12.1f %14.1f\n%!"
        (E.baseline_name proto) r.E.delay_ms r.E.tput_per_sec r.E.frames_per_msg
        r.E.interrupts_per_msg)
    [ E.Amoeba_pb; E.Amoeba_bb; E.Cm_token; E.Pos_ack; E.Migrating ]

let ablation_migrate () =
  header "Section 5 ablation: static vs migrating sequencer on bursty senders"
    "\"the performance gained by migrating the sequencer may be worth the complexity\"";
  let stat = E.burst_delay ~n:8 `Static in
  let mig = E.burst_delay ~n:8 `Migrating in
  Printf.printf "  static sequencer:    %5.2f ms per message in a burst\n" stat;
  Printf.printf "  migrating sequencer: %5.2f ms per message in a burst\n" mig;
  Printf.printf "  migrating wins by %.1fx once the token is local\n" (stat /. mig)

let ablation_pbbb () =
  header "Section 3.1 ablation: the PB/BB switch (group of 8, 1 sender)"
    "PB spends 2n bytes of bandwidth but interrupts receivers once;\n\
     BB spends n bytes but interrupts twice; Amoeba switches on size";
  Printf.printf "%8s | %10s %10s %10s   (delay ms; Auto should track the winner)\n"
    "size" "PB" "BB" "Auto";
  List.iter
    (fun size ->
      let d m = (E.broadcast_delay ~samples:8 ~n:8 ~size ~send_method:m ()).E.mean_ms in
      Printf.printf "%8d | %10.2f %10.2f %10.2f\n%!" size (d T.Pb) (d T.Bb) (d T.Auto))
    [ 0; 256; 1024; 2048; 4096; 8000 ]

let ablation_processing () =
  header "Conclusion 1 ablation: throughput vs. message-processing cost (group of 8, 0B)"
    "\"the scalability of our sequencer-based protocols is limited by message\n\
     processing time\" - halving software costs should raise throughput well\n\
     before the 10 Mbit/s wire matters";
  Printf.printf "%12s %14s %12s\n" "cpu factor" "msgs/second" "delay (ms)";
  List.iter
    (fun factor ->
      let cost = E.scaled_processing factor in
      let tput =
        (E.group_throughput ~cost ~duration_ms:1_200 ~n:8 ~size:0
           ~send_method:T.Pb ())
          .E.msgs_per_sec
      in
      let d =
        (E.broadcast_delay ~cost ~samples:8 ~n:8 ~size:0 ~send_method:T.Pb ())
          .E.mean_ms
      in
      Printf.printf "%12.2f %14.0f %12.2f\n%!" factor tput d)
    [ 2.0; 1.5; 1.0; 0.5; 0.25; 0.1 ]

let ablation_userspace () =
  header "Section 5 ablation: in-kernel vs user-space protocol implementation"
    "Oey et al. measured a 32% slowdown for a user-space implementation on\n\
     synthetic benchmarks (paper cites [23])";
  let kernel_d =
    (E.broadcast_delay ~samples:10 ~n:8 ~size:0 ~send_method:T.Pb ()).E.mean_ms
  in
  let user_d =
    (E.broadcast_delay ~cost:E.user_space_costs ~samples:10 ~n:8 ~size:0
       ~send_method:T.Pb ())
      .E.mean_ms
  in
  let kernel_t =
    (E.group_throughput ~duration_ms:1_200 ~n:8 ~size:0 ~send_method:T.Pb ())
      .E.msgs_per_sec
  in
  let user_t =
    (E.group_throughput ~cost:E.user_space_costs ~duration_ms:1_200 ~n:8 ~size:0
       ~send_method:T.Pb ())
      .E.msgs_per_sec
  in
  Printf.printf "  delay:      kernel %5.2f ms   user space %5.2f ms  (+%.0f%%)\n"
    kernel_d user_d
    (100. *. ((user_d /. kernel_d) -. 1.));
  Printf.printf "  throughput: kernel %5.0f /s   user space %5.0f /s  (-%.0f%%)\n"
    kernel_t user_t
    (100. *. (1. -. (user_t /. kernel_t)))

let ablation_flowcontrol () =
  header "Section 4 extension: multicast flow control for multi-packet messages"
    "\"it is not immediately clear how [flow control] should be extended to\n\
     multicast communication\" - rate-pacing the fragments (BB, 8 senders);\n\
     * marks retransmission-bound runs, the paper's unmeasurable configs";
  Printf.printf "%10s | %12s %12s %12s   (msg/s by inter-fragment gap)\n" "size"
    "no pacing" "300 us" "600 us";
  List.iter
    (fun size ->
      Printf.printf "%10d |" size;
      List.iter
        (fun gap_us ->
          let cost =
            { Cost_model.default with multicast_frag_gap_ns = gap_us * 1_000 }
          in
          let r =
            E.group_throughput ~cost ~duration_ms:1_500 ~n:8 ~size
              ~send_method:T.Bb ()
          in
          Printf.printf " %11.0f%s" r.E.msgs_per_sec
            (if not r.E.meaningful then "*" else " "))
        [ 0; 300; 600 ];
      print_newline ())
    [ 2048; 4096; 8000 ];
  print_endline
    "2 KB stabilises with a paced sender plus byte-bounded repair; 4 KB only\n\
     at a well-matched rate; 8 KB with 8 senders exceeds what a 10 Mbit/s\n\
     Ethernet can carry, pacing or not - receiver-driven credits (Transis,\n\
     the paper's ref [1]) would be the next step."

let fig_load_latency () =
  header "Conclusion 1, queueing view: delay vs offered load (group of 8, 0B, Poisson)"
    "open-loop arrivals show the knee at the sequencer's processing ceiling\n\
     (~740 msg/s closed-loop); past it the queue and the delay blow up";
  Printf.printf "%12s %12s %14s\n" "offered/s" "completed/s" "mean delay ms";
  List.iter
    (fun rate ->
      let p = E.open_loop_load ~duration_ms:2_000 ~n:8 ~rate_per_sec:rate () in
      Printf.printf "%12.0f %12.0f %14.2f\n%!" p.E.offered_per_sec
        p.E.completed_per_sec p.E.mean_delay_ms)
    [ 100.; 300.; 500.; 650.; 720.; 800. ]

let ablation_history () =
  header "Section 3.1 ablation: history-buffer size (group of 3, 0B, one idle member)"
    "the measurements used 128 messages; a small buffer fills, parks requests\n\
     and solicits member status, throttling the sequencer";
  Printf.printf "%12s %14s\n" "history" "msgs/second";
  List.iter
    (fun history ->
      (* One member never sends, so only solicitation (not piggybacked
         traffic) can advance the pruning frontier. *)
      let cl = Amoeba_harness.Cluster.create ~n:3 () in
      let rate = ref 0. in
      Amoeba_harness.Cluster.spawn cl (fun () ->
          let open Amoeba_core in
          let creator =
            Api.create_group (Amoeba_harness.Cluster.flip cl 0) ~history ()
          in
          let addr = Api.group_address creator in
          let g1 =
            Result.get_ok
              (Api.join_group (Amoeba_harness.Cluster.flip cl 1) ~history addr)
          in
          let idle =
            Result.get_ok
              (Api.join_group (Amoeba_harness.Cluster.flip cl 2) ~history addr)
          in
          List.iter
            (fun g ->
              Amoeba_harness.Cluster.spawn cl (fun () ->
                  let rec loop () =
                    ignore (Api.receive_from_group g);
                    loop ()
                  in
                  loop ()))
            [ creator; g1; idle ];
          let deadline = Amoeba_sim.Time.ms 1_500 in
          Amoeba_harness.Cluster.spawn cl (fun () ->
              let rec loop () =
                if Amoeba_harness.Cluster.now cl < deadline then begin
                  ignore (Api.send_to_group g1 Bytes.empty);
                  loop ()
                end
              in
              loop ());
          let warmup = deadline / 4 in
          Amoeba_sim.Engine.sleep cl.Amoeba_harness.Cluster.engine warmup;
          let c0 = Kernel.next_expected (Api.kernel creator) in
          Amoeba_sim.Engine.sleep cl.Amoeba_harness.Cluster.engine
            (deadline - warmup);
          let c1 = Kernel.next_expected (Api.kernel creator) in
          rate :=
            float_of_int (c1 - c0) /. Amoeba_sim.Time.to_sec (deadline - warmup));
      Amoeba_harness.Cluster.run ~until:(Amoeba_sim.Time.sec 3) cl;
      Printf.printf "%12d %14.0f\n%!" history !rate)
    [ 4; 8; 16; 32; 64; 128 ]

let headline () =
  header "Headline numbers" "abstract: 2.8 ms null broadcast to 30; 815 msg/s; 3175 msg/s multi-group";
  let d30 = (E.broadcast_delay ~samples:12 ~n:30 ~size:0 ~send_method:T.Pb ()).E.mean_ms in
  let tput = (E.group_throughput ~duration_ms:1_500 ~n:16 ~size:0 ~send_method:T.Pb ()).E.msgs_per_sec in
  let mg = (E.multigroup_throughput ~duration_ms:1_500 ~groups:5 ~members:2 ()).E.total_msgs_per_sec in
  Printf.printf "  null broadcast to a group of 30: %6.2f ms   (paper: 2.8)\n" d30;
  Printf.printf "  max throughput per group:        %6.0f /s    (paper: 815)\n" tput;
  Printf.printf "  max multi-group throughput:      %6.0f /s    (paper: 3175)\n" mg;
  json_out "headline"
    [ ("broadcast_30_ms", Bench_json.Float d30);
      ("max_group_msgs_per_sec", Bench_json.Float tput);
      ("max_multigroup_msgs_per_sec", Bench_json.Float mg) ]

(* ----- service: sharded-service shard-scaling sweep ----- *)

(* One measured service workload: a cluster of replica hosts plus
   router machines, one replicated KV group per shard placed by the
   shard map, closed-loop clients driving uniform writes through the
   routers.  Deterministic in [seed].  At the defaults
   ([max_batch] 1, [pipeline_depth] 1) the run is bit-identical to the
   pre-batching service path; [max_batch] > 1 turns on router-side op
   batching (and drops each router to one worker per shard — a single
   in-flight batch per shard both keeps the replica endpoint
   uncontended and lets the backlog coalesce), [pipeline_depth] sets
   the kernels' in-flight sequencer rounds.  [disk] gives every
   machine a local disk and turns on durable replicas ([fsync] and
   [checkpoint_every] set the policy); without it nothing touches a
   disk and the run is bit-identical to the non-durable path.  Returns
   the workload result plus the per-router stats. *)
let service_run ~shards ~hosts ~routers ~replication ~workers ~duration_ms
    ~wire_mbps ?(max_batch = 1) ?(batch_delay_us = 500) ?(pipeline_depth = 1)
    ?disk ?(fsync = Amoeba_grouplib.Rsm.Group_fsync 8) ?(checkpoint_every = 64)
    ?(fabric = Amoeba_net.Medium.Shared) ?(ramp = Amoeba_sim.Time.zero)
    ?probe ~seed () =
  let open Amoeba_service in
  let map =
    Shard_map.create ~shards ~replication ~hosts:(List.init hosts Fun.id) ()
  in
  let cost =
    let base = Cost_model.(with_mbps wire_mbps default) in
    match disk with
    | Some d -> { base with Cost_model.disk = d }
    | None -> base
  in
  let durable =
    Option.map
      (fun _ ->
        {
          Service.d_store = Amoeba_grouplib.Stable_store.create ();
          d_sync = fsync;
          d_checkpoint_every = checkpoint_every;
        })
      disk
  in
  let cl = Cluster.create ~cost ~seed ~fabric ~n:(hosts + routers) () in
  let result = ref None in
  let rstats = ref [] in
  Cluster.spawn cl (fun () ->
      let svc =
        Service.deploy cl ~map ~resilience:1 ~pipeline:pipeline_depth ?durable ()
      in
      let rs =
        List.init routers (fun i ->
            Router.create
              (Cluster.flip cl (hosts + i))
              ~max_batch
              ~pipeline:(if max_batch > 1 then 1 else 4)
              ~batch_delay:(Amoeba_sim.Time.us batch_delay_us)
              ~map
              ~endpoints:(Service.endpoints svc) ())
      in
      let spec =
        {
          Workload.keys = 1_000;
          value_bytes = 32;
          read_ratio = 0.0;
          dist = Workload.Uniform;
          mode = Workload.Closed workers;
          duration = Amoeba_sim.Time.ms duration_ms;
          ramp;
          seed;
        }
      in
      (* Counters only, no timing: utilisation read by [probe] covers
         the measured window, not the idle deploy phase before it. *)
      Amoeba_net.Medium.reset_utilisation_window cl.Cluster.net;
      result := Some (Workload.run cl ~routers:rs ~map spec);
      rstats := List.map Router.stats rs;
      Option.iter (fun f -> f cl) probe);
  Cluster.run
    ~until:(Amoeba_sim.Time.ms duration_ms + Amoeba_sim.Time.sec 60)
    cl;
  (Option.get !result, !rstats)

(* BENCH_service.json carries the shard-scaling rows (the [service]
   target), the batching sweep (the [batch] target) and the durability
   rows (the [recovery] target).  Each target caches its fields and
   rewrites the file with whatever has been measured so far, so
   running several targets in one invocation yields one file with all
   their sections. *)
let service_json_fields : (string * Bench_json.t) list ref = ref []
let batch_json_fields : (string * Bench_json.t) list ref = ref []
let recovery_json_fields : (string * Bench_json.t) list ref = ref []
let fabric_json_fields : (string * Bench_json.t) list ref = ref []
let migration_json_fields : (string * Bench_json.t) list ref = ref []

let write_service_json () =
  json_out "service"
    (!service_json_fields @ !batch_json_fields @ !recovery_json_fields
   @ !fabric_json_fields @ !migration_json_fields)

let service () =
  header
    "Service scaling: aggregate committed ops/s vs shard count (12 machines)"
    "section 4 / conclusion 1: one sequencer CPU caps a group, so partitioned\n\
     groups with spread sequencers are the scaling axis; on the paper's\n\
     10 Mbit/s wire the shared Ether saturates near 830 ops/s, while at\n\
     100 Mbit/s the machines stay the bottleneck and shards keep paying off";
  (* 8 replica hosts + 4 router machines = 12.  Replication 2 keeps
     every group member on its own machine up to 4 shards. *)
  let hosts, routers, replication, seed = (8, 4, 2, 11) in
  let shard_counts = if !smoke_mode then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let workers = if !smoke_mode then 16 else 64 in
  let duration_ms = if !smoke_mode then 600 else 3_000 in
  let wires = [ 10; 100 ] in
  Printf.printf "%8s |" "shards";
  List.iter (fun m -> Printf.printf " %7dMb x" m) wires;
  Printf.printf "   (committed ops/s; x = speedup vs 1 shard)\n";
  let base = Hashtbl.create 4 in
  let rows = ref [] in
  List.iter
    (fun shards ->
      Printf.printf "%8d |" shards;
      List.iter
        (fun wire_mbps ->
          let r, _ =
            service_run ~shards ~hosts ~routers ~replication ~workers
              ~duration_ms ~wire_mbps ~seed ()
          in
          if shards = List.hd shard_counts then
            Hashtbl.replace base wire_mbps r.Amoeba_service.Workload.ops_per_sec;
          let speedup =
            r.Amoeba_service.Workload.ops_per_sec
            /. Hashtbl.find base wire_mbps
          in
          rows :=
            (shards, wire_mbps, r.Amoeba_service.Workload.ops_per_sec,
             r.Amoeba_service.Workload.p95_ms, r.Amoeba_service.Workload.failed)
            :: !rows;
          Printf.printf " %6.0f %4.2fx" r.Amoeba_service.Workload.ops_per_sec
            speedup)
        wires;
      print_newline ())
    shard_counts;
  service_json_fields :=
    [
      ("hosts", Bench_json.Int hosts);
      ("routers", Bench_json.Int routers);
      ("replication", Bench_json.Int replication);
      ("workers", Bench_json.Int workers);
      ("duration_ms", Bench_json.Int duration_ms);
      ("seed", Bench_json.Int seed);
      ( "rows",
        Bench_json.List
          (List.rev_map
             (fun (shards, wire, ops, p95, failed) ->
               Bench_json.Obj
                 [
                   ("shards", Bench_json.Int shards);
                   ("wire_mbps", Bench_json.Int wire);
                   ("ops_per_sec", Bench_json.Float ops);
                   ("p95_ms", Bench_json.Float p95);
                   ("failed", Bench_json.Int failed);
                 ])
             !rows) );
    ];
  write_service_json ()

(* ----- batch: batching x pipelining sweep ----- *)

(* The batching sweep drives a bigger cluster than the shard-scaling
   one: 8 shards over 16 replica hosts (replication 3) plus 4 router
   machines, and enough closed-loop clients (1024) that the shards
   saturate — batches only coalesce under backlog, so an underloaded
   sweep would measure the Nagle timer, not the amortisation. *)
let batch () =
  header
    "Batching + pipelining: committed ops/s vs batch size, depth, wire (20 machines)"
    "section 4 / conclusion 1: one protocol round per message caps a sequencer\n\
     near 1 k ops/s of CPU; carrying a batch of ops per round amortises that\n\
     fixed cost, so ops/s scales with batch size until the wire pushes back";
  let shards, hosts, routers, replication, seed = (8, 16, 4, 3, 11) in
  let workers = if !smoke_mode then 96 else 1_024 in
  let duration_ms = if !smoke_mode then 400 else 2_000 in
  let batch_sizes = if !smoke_mode then [ 1; 8 ] else [ 1; 4; 8; 32; 128 ] in
  let depths = if !smoke_mode then [ 4 ] else [ 1; 4 ] in
  let wires = if !smoke_mode then [ 100 ] else [ 10; 100 ] in
  Printf.printf
    "%6s %6s %6s | %8s %7s %7s %7s %7s | %9s %8s %8s\n"
    "wire" "batch" "depth" "ops/s" "mean" "p50" "p95" "p99" "ops/batch"
    "partial" "retries";
  let rows = ref [] in
  List.iter
    (fun wire_mbps ->
      List.iter
        (fun depth ->
          List.iter
            (fun max_batch ->
              let r, stats =
                service_run ~shards ~hosts ~routers ~replication ~workers
                  ~duration_ms ~wire_mbps ~max_batch ~pipeline_depth:depth
                  ~seed ()
              in
              let sum f = List.fold_left (fun a s -> a + f s) 0 stats in
              let batches = sum (fun s -> s.Amoeba_service.Router.batches_sent) in
              let opsb = sum (fun s -> s.Amoeba_service.Router.ops_batched) in
              let partial =
                sum (fun s -> s.Amoeba_service.Router.partial_flushes)
              in
              let bretries =
                sum (fun s -> s.Amoeba_service.Router.batch_retries)
              in
              let avg =
                if batches = 0 then 1.
                else float_of_int opsb /. float_of_int batches
              in
              let open Amoeba_service.Workload in
              Printf.printf
                "%6d %6d %6d | %8.0f %7.2f %7.2f %7.2f %7.2f | %9.1f %8d %8d\n%!"
                wire_mbps max_batch depth r.ops_per_sec r.mean_ms r.p50_ms
                r.p95_ms r.p99_ms avg partial bretries;
              rows :=
                Bench_json.Obj
                  [
                    ("wire_mbps", Bench_json.Int wire_mbps);
                    ("max_batch", Bench_json.Int max_batch);
                    ("pipeline_depth", Bench_json.Int depth);
                    ("ops_per_sec", Bench_json.Float r.ops_per_sec);
                    ("mean_ms", Bench_json.Float r.mean_ms);
                    ("p50_ms", Bench_json.Float r.p50_ms);
                    ("p95_ms", Bench_json.Float r.p95_ms);
                    ("p99_ms", Bench_json.Float r.p99_ms);
                    ("ops_per_batch_avg", Bench_json.Float avg);
                    ("partial_flushes", Bench_json.Int partial);
                    ("batch_retries", Bench_json.Int bretries);
                    ("failed", Bench_json.Int r.failed);
                  ]
                :: !rows)
            batch_sizes)
        depths)
    wires;
  batch_json_fields :=
    [
      ( "batch_sweep",
        Bench_json.Obj
          [
            ("shards", Bench_json.Int shards);
            ("hosts", Bench_json.Int hosts);
            ("routers", Bench_json.Int routers);
            ("replication", Bench_json.Int replication);
            ("workers", Bench_json.Int workers);
            ("duration_ms", Bench_json.Int duration_ms);
            ("seed", Bench_json.Int seed);
            ("rows", Bench_json.List (List.rev !rows));
          ] );
    ];
  write_service_json ()

(* ----- recovery: durable-write overhead and recovery time ----- *)

(* What durability costs on the commit path, and what it buys back at
   recovery.  Two tables:

   - committed ops/s with durability off vs the three fsync policies,
     per disk profile: fsync-per-commit puts a platter round-trip
     inside every ack, group-fsync amortises it over 8 commits,
     checkpoint-only moves all of it off the ack path;

   - simulated recovery time of one replica vs WAL length, per disk
     profile: a seeded WAL of N committed KV updates is replayed
     through [Rsm.recover] at the disk's seek + read speed.  The WAL
     is written directly (sync on the last record covers the buffered
     prefix) so the table isolates recovery cost from workload cost. *)
let recovery () =
  header
    "Durability: committed ops/s by fsync policy, and recovery time vs WAL length"
    "robustness extension (not in the paper): the write-ahead log's fsyncs sit\n\
     on the commit path, so policy choice trades durability window against\n\
     throughput; recovery replays the log at disk speed";
  let module R = Amoeba_grouplib.Rsm in
  let module Store = Amoeba_grouplib.Stable_store in
  let shards, hosts, routers, replication, seed = (4, 8, 4, 2, 11) in
  let workers = if !smoke_mode then 16 else 64 in
  let duration_ms = if !smoke_mode then 400 else 2_000 in
  let disks = [ ("hdd1996", Cost_model.hdd1996); ("ssd", Cost_model.ssd) ] in
  let policies =
    [
      ("off", None);
      ("checkpoint-only", Some R.Checkpoint_only);
      ("group-fsync-8", Some (R.Group_fsync 8));
      ("fsync-per-commit", Some R.Every_commit);
    ]
  in
  Printf.printf "%18s |" "policy";
  List.iter (fun (n, _) -> Printf.printf " %9s" n) disks;
  Printf.printf "   (committed ops/s, %d shards, wire 100 Mbit)\n" shards;
  let off_ops = ref nan in
  let overhead_rows = ref [] in
  List.iter
    (fun (pname, policy) ->
      Printf.printf "%18s |" pname;
      List.iter
        (fun (dname, d) ->
          let ops =
            match policy with
            | None ->
                (* No disk at all: the figure is profile-independent,
                   measured once and repeated across the columns. *)
                if Float.is_nan !off_ops then
                  off_ops :=
                    (fst
                       (service_run ~shards ~hosts ~routers ~replication
                          ~workers ~duration_ms ~wire_mbps:100 ~seed ()))
                      .Amoeba_service.Workload.ops_per_sec;
                !off_ops
            | Some fsync ->
                (fst
                   (service_run ~shards ~hosts ~routers ~replication ~workers
                      ~duration_ms ~wire_mbps:100 ~disk:d ~fsync
                      ~checkpoint_every:64 ~seed ()))
                  .Amoeba_service.Workload.ops_per_sec
          in
          overhead_rows :=
            Bench_json.Obj
              [
                ("policy", Bench_json.Str pname);
                ("disk", Bench_json.Str dname);
                ("ops_per_sec", Bench_json.Float ops);
              ]
            :: !overhead_rows;
          Printf.printf " %9.0f" ops)
        disks;
      print_newline ())
    policies;
  (* -- recovery time vs WAL length -- *)
  let recover_ms ~disk ~records =
    let store = Store.create () in
    let d =
      { R.store; log = "bench"; sync = R.Every_commit; checkpoint_every = 0 }
    in
    let cost = { Cost_model.default with Cost_model.disk } in
    let cl = Cluster.create ~cost ~seed:1 ~n:1 () in
    let value = String.make 32 'v' in
    let seeded = Amoeba_sim.Ivar.create () in
    Cluster.spawn_on cl 0 (fun () ->
        let m = Cluster.machine cl 0 in
        for i = 1 to records do
          ignore
            (Store.wal_append store m ~log:(R.wal_name d) ~sync:(i = records)
               ~index:i
               (Amoeba_service.Kv.Store.encode_update
                  (Amoeba_service.Kv.Store.Put
                     { uid = i; key = Printf.sprintf "key-%d" i; value })))
        done;
        Amoeba_sim.Ivar.fill seeded ());
    Cluster.spawn cl (fun () ->
        Amoeba_sim.Ivar.read cl.Cluster.engine seeded;
        Machine.crash (Cluster.machine cl 0));
    Cluster.run cl;
    Cluster.restart cl 0;
    let ms = ref nan in
    Cluster.spawn_on cl 0 (fun () ->
        let module KR = Amoeba_service.Kv.Rsm_store in
        let t0 = Cluster.now cl in
        match KR.recover d (Cluster.machine cl 0) with
        | Ok rec_ ->
            if rec_.KR.r_applied <> records then
              failwith
                (Printf.sprintf "recovered %d of %d records" rec_.KR.r_applied
                   records);
            ms := Amoeba_sim.Time.to_ms (Cluster.now cl - t0)
        | Error e -> failwith ("bench recovery refused: " ^ e));
    Cluster.run ~until:(Amoeba_sim.Time.sec 600) cl;
    !ms
  in
  let wal_lengths =
    if !smoke_mode then [ 100; 1_000 ] else [ 100; 1_000; 10_000 ]
  in
  Printf.printf "\n%12s |" "wal records";
  List.iter (fun (n, _) -> Printf.printf " %9s" n) disks;
  Printf.printf "   (simulated recovery time, ms)\n";
  let time_rows = ref [] in
  List.iter
    (fun records ->
      Printf.printf "%12d |" records;
      List.iter
        (fun (dname, d) ->
          let ms = recover_ms ~disk:d ~records in
          time_rows :=
            Bench_json.Obj
              [
                ("disk", Bench_json.Str dname);
                ("wal_records", Bench_json.Int records);
                ("recover_ms", Bench_json.Float ms);
              ]
            :: !time_rows;
          Printf.printf " %9.2f" ms)
        disks;
      print_newline ())
    wal_lengths;
  recovery_json_fields :=
    [
      ( "durability",
        Bench_json.Obj
          [
            ("shards", Bench_json.Int shards);
            ("hosts", Bench_json.Int hosts);
            ("workers", Bench_json.Int workers);
            ("duration_ms", Bench_json.Int duration_ms);
            ("seed", Bench_json.Int seed);
            ("overhead_rows", Bench_json.List (List.rev !overhead_rows));
            ("recovery_rows", Bench_json.List (List.rev !time_rows));
          ] );
    ];
  write_service_json ()

(* ----- fabric: shard count x network topology at 100+ hosts ----- *)

(* The sweep that motivated the switched fabric: PR 6's batching took
   the 8-shard service to 18 164 ops/s on the 100 Mbit shared wire and
   left the wire itself as the named bottleneck.  Here the same
   service runs at 100 and 200 hosts, 8..64 shards, over the shared
   Ether and over switched topologies (flat, and 4 oversubscribed
   segments), recording throughput, tail latency and the fabric's own
   counters.  Clients slow-start over a ramp (measured figures exclude
   it): thousands of first-contact clients at t=0 starve every CPU at
   once, and the group kernels read that stall as member failures —
   a thundering herd no real deployment starts from. *)
let fabric () =
  header
    "Fabric sweep: ops/s and p99 vs shard count x topology (100+ hosts)"
    "past the paper: the shared Ether is the last bottleneck after PR 6's\n\
     batching; a store-and-forward switch with full-duplex host links\n\
     removes the collision ceiling while the same kernel bits run";
  let replication, seed = (3, 11) in
  let workers = if !smoke_mode then 64 else 2_048 in
  let duration_ms = if !smoke_mode then 1_000 else 12_000 in
  let ramp_ms = if !smoke_mode then 200 else 4_000 in
  (* (shards, hosts, routers): 100 hosts carry up to 32 shards with
     every sequencer and follower on its own machine; 64 shards would
     stack ~3.5 followers per host, so the 64-shard rows double the
     pool instead of measuring placement starvation. *)
  let scales =
    if !smoke_mode then [ (2, 10, 2) ]
    else [ (8, 100, 8); (16, 100, 8); (32, 100, 8); (64, 200, 8) ]
  in
  let topologies hosts routers =
    let named s =
      match Amoeba_net.Medium.spec_of_string s with
      | Ok spec -> (s, spec)
      | Error e -> failwith ("fabric sweep topology " ^ s ^ ": " ^ e)
    in
    [ named "ether"; named "switch" ]
    @
    (* 4 leaf segments sized to the whole station count (hosts +
       routers), uplinks 10x a host link: 27:10 oversubscribed. *)
    if !smoke_mode then []
    else [ named (Printf.sprintf "switch:4x%d@10" ((hosts + routers + 3) / 4)) ]
  in
  Printf.printf "%8s %6s | %-16s %10s %9s %7s %7s %6s %6s\n" "shards" "hosts"
    "net" "ops/s" "p99 ms" "failed" "util%" "coll" "qdrop";
  let rows = ref [] in
  List.iter
    (fun (shards, hosts, routers) ->
      List.iter
        (fun (label, spec) ->
          let util = ref 0.0 and coll = ref 0 and qdrops = ref 0 in
          let probe cl =
            let m = cl.Cluster.net in
            util := Amoeba_net.Medium.utilisation m;
            coll := Amoeba_net.Medium.collisions m;
            qdrops := Amoeba_net.Medium.queue_drops m
          in
          let r, _ =
            service_run ~shards ~hosts ~routers ~replication ~workers
              ~duration_ms ~wire_mbps:100 ~max_batch:32 ~pipeline_depth:4
              ~fabric:spec
              ~ramp:(Amoeba_sim.Time.ms ramp_ms)
              ~probe ~seed ()
          in
          let open Amoeba_service.Workload in
          Printf.printf
            "%8d %6d | %-16s %10.0f %9.1f %7d %6.1f%% %7d %6d\n%!" shards
            hosts label r.ops_per_sec r.p99_ms r.failed (100.0 *. !util) !coll
            !qdrops;
          rows :=
            Bench_json.Obj
              [
                ("shards", Bench_json.Int shards);
                ("hosts", Bench_json.Int hosts);
                ("routers", Bench_json.Int routers);
                ("net", Bench_json.Str label);
                ("ops_per_sec", Bench_json.Float r.ops_per_sec);
                ("p99_ms", Bench_json.Float r.p99_ms);
                ("failed", Bench_json.Int r.failed);
                ("utilisation", Bench_json.Float !util);
                ("collisions", Bench_json.Int !coll);
                ("queue_drops", Bench_json.Int !qdrops);
              ]
            :: !rows)
        (topologies hosts routers))
    scales;
  fabric_json_fields :=
    [
      ( "fabric",
        Bench_json.Obj
          [
            ("replication", Bench_json.Int replication);
            ("workers", Bench_json.Int workers);
            ("duration_ms", Bench_json.Int duration_ms);
            ("ramp_ms", Bench_json.Int ramp_ms);
            ("max_batch", Bench_json.Int 32);
            ("pipeline_depth", Bench_json.Int 4);
            ("wire_mbps", Bench_json.Int 100);
            ("seed", Bench_json.Int seed);
            ("rows", Bench_json.List (List.rev !rows));
          ] );
    ];
  write_service_json ()

(* ----- migration: blackout window and added latency vs shard size ----- *)

(* What a live migration costs the clients that keep writing through
   it.  One durable shard is preloaded with [records] keys, a single
   closed-loop probe client times every put, and the shard is then
   migrated to two fresh hosts.  Three figures per (disk, size) cell:

   - the migration window — wall time of [Service.migrate_shard], i.e.
     join + checkpoint/WAL-delta transfer + retire/leave cutover;

   - added p50/p99 put latency for probes whose lifetime overlaps the
     window, relative to the pre-migration p50.  The probe is
     closed-loop, so the put that spans the cutover blackout absorbs
     the whole retire-and-retry stall — that put IS the p99.

   The transfer ships the source checkpoint plus the WAL delta, so the
   window grows with the preloaded state and with the disk's
   checkpoint read/write speed — which is why the table sweeps both. *)
let migration_run ~records ~disk ~seed =
  let open Amoeba_service in
  let hosts = 6 in
  let map =
    Shard_map.create ~shards:1 ~replication:2 ~hosts:(List.init hosts Fun.id)
      ()
  in
  let cost =
    let base = Cost_model.(with_mbps 100 default) in
    { base with Cost_model.disk }
  in
  let cl = Cluster.create ~cost ~seed ~n:(hosts + 1) () in
  let eng = cl.Cluster.engine in
  let dc =
    {
      Service.d_store = Amoeba_grouplib.Stable_store.create ();
      d_sync = Amoeba_grouplib.Rsm.Group_fsync 8;
      d_checkpoint_every = 64;
    }
  in
  let samples = ref [] in
  let t_mig = ref (Amoeba_sim.Time.zero, Amoeba_sim.Time.zero) in
  let probing = ref true in
  Cluster.spawn cl (fun () ->
      let svc = Service.deploy cl ~map ~resilience:1 ~durable:dc () in
      let r =
        Router.create (Cluster.flip cl hosts) ~map
          ~endpoints:(Service.endpoints svc) ()
      in
      let value = String.make 32 'v' in
      Amoeba_sim.Engine.sleep eng (Amoeba_sim.Time.ms 50);
      for i = 1 to records do
        match Router.put r (Printf.sprintf "key-%06d" i) value with
        | Router.Written -> ()
        | _ -> failwith "migration bench: preload put failed"
      done;
      (* Acks return at sequencing; the appliers drain their WAL
         behind them (a 1996 hdd pays a seek per append, so the
         backlog after a closed-loop preload is real).  The transfer
         serves its snapshot from the responder's apply position, so
         measuring from inside the backlog would charge the window
         for the preload.  Wait until every replica has applied the
         whole preload before probing. *)
      let settled () =
        List.for_all (fun (_, n) -> n >= records) (Service.applied svc 0)
      in
      while not (settled ()) do
        Amoeba_sim.Engine.sleep eng (Amoeba_sim.Time.ms 50)
      done;
      Cluster.spawn cl (fun () ->
          while !probing do
            let t0 = Cluster.now cl in
            (match Router.put r "probe" value with
            | Router.Written ->
                samples := (t0, Cluster.now cl) :: !samples
            | _ -> ());
            (* 50 puts/s: under even the hdd1996 applier's ~100
               appends/s ceiling, so the probe load itself cannot
               re-grow the backlog on any profile *)
            Amoeba_sim.Engine.sleep eng (Amoeba_sim.Time.ms 20)
          done);
      Amoeba_sim.Engine.sleep eng (Amoeba_sim.Time.sec 2);
      let t0 = Cluster.now cl in
      (* the default 2 s watchdog is sized for chaos runs on ssd; a
         10 k-record reconcile at 1996-hdd seek times needs minutes of
         simulated time, so the bench bounds each step generously *)
      (match
         Service.migrate_shard svc ~shard:0
           ~timeout:(Amoeba_sim.Time.sec 300)
           ~hosts:[ 4; 5 ] ()
       with
      | Ok () -> ()
      | Error e -> failwith ("migration bench: migration failed: " ^ e));
      t_mig := (t0, Cluster.now cl);
      Router.update_endpoints r (Service.endpoints svc);
      Amoeba_sim.Engine.sleep eng (Amoeba_sim.Time.sec 1);
      probing := false);
  Cluster.run ~until:(Amoeba_sim.Time.sec 600) cl;
  let m0, m1 = !t_mig in
  let window_ms = Amoeba_sim.Time.to_ms (m1 - m0) in
  let lat (t0, t1) = Amoeba_sim.Time.to_ms (t1 - t0) in
  let before =
    List.filter_map
      (fun (t0, t1) -> if t1 <= m0 then Some (lat (t0, t1)) else None)
      !samples
  in
  let during =
    List.filter_map
      (fun (t0, t1) ->
        if t1 > m0 && t0 < m1 then Some (lat (t0, t1)) else None)
      !samples
  in
  let pctl p xs =
    match xs with
    | [] -> nan
    | _ ->
        let a = Array.of_list xs in
        Array.sort compare a;
        a.(min (Array.length a - 1)
             (int_of_float (p *. float_of_int (Array.length a))))
  in
  let base_p50 = pctl 0.5 before in
  (window_ms, base_p50, pctl 0.5 during -. base_p50, pctl 0.99 during -. base_p50)

let migration () =
  header
    "Migration blackout: transfer window and added put latency vs shard size"
    "robustness extension (not in the paper): the cutover reuses the kernel's\n\
     graceful leave, so ordering is view-synchronous across the handoff; what\n\
     clients pay is the state-transfer window, which scales with shard size\n\
     and disk speed";
  let disks =
    if !smoke_mode then [ ("ssd", Cost_model.ssd) ]
    else
      [
        ("hdd1996", Cost_model.hdd1996);
        ("ssd", Cost_model.ssd);
        ("nvme", Cost_model.nvme);
      ]
  in
  let sizes = if !smoke_mode then [ 64 ] else [ 100; 1_000; 10_000 ] in
  let seed = 11 in
  Printf.printf "%8s %8s | %10s %9s %9s %9s\n" "disk" "records" "window ms"
    "p50 ms" "+p50 ms" "+p99 ms";
  let rows = ref [] in
  List.iter
    (fun (dname, disk) ->
      List.iter
        (fun records ->
          let window_ms, base_p50, add_p50, add_p99 =
            migration_run ~records ~disk ~seed
          in
          Printf.printf "%8s %8d | %10.1f %9.2f %9.2f %9.2f\n%!" dname records
            window_ms base_p50 add_p50 add_p99;
          rows :=
            Bench_json.Obj
              [
                ("disk", Bench_json.Str dname);
                ("records", Bench_json.Int records);
                ("window_ms", Bench_json.Float window_ms);
                ("base_p50_ms", Bench_json.Float base_p50);
                ("added_p50_ms", Bench_json.Float add_p50);
                ("added_p99_ms", Bench_json.Float add_p99);
              ]
            :: !rows)
        sizes)
    disks;
  migration_json_fields :=
    [
      ( "migration",
        Bench_json.Obj
          [
            ("replication", Bench_json.Int 2);
            ("wire_mbps", Bench_json.Int 100);
            ("seed", Bench_json.Int seed);
            ("rows", Bench_json.List (List.rev !rows));
          ] );
    ];
  write_service_json ()

(* ----- loadgen: SLO-driven saturation sweep ----- *)

(* The YCSB-style open-loop sweep: for each shard count x fabric
   configuration, binary-search the highest Poisson offered load whose
   p99 stays under the SLO with >= 95 % completion.  All the machinery
   lives in lib/loadgen (shared with `amoeba loadgen`); this target is
   the sweep driver plus the BENCH_loadgen.json emission. *)
let loadgen () =
  let module L = Amoeba_loadgen in
  header
    "Loadgen: max sustainable offered load (knee) vs shard count x fabric"
    "conclusion 1, service view: each shard's sequencer is a fixed-rate\n\
     server, so the knee of the latency curve scales with shards until\n\
     the fabric pushes back; mixed YCSB-A load with multi-key txns";
  let params = L.Report.default_params ~smoke:!smoke_mode in
  Printf.printf
    "mix %s over %d keys, values %s, %d-key txns; SLO p99 <= %.0f ms at >= \
     %.0f%% completion; %d ms windows, seed %d\n"
    params.L.Report.mix.L.Mix.name params.L.Report.keys
    (L.Dist.to_string params.L.Report.value_dist)
    params.L.Report.txn_size params.L.Report.slo.L.Saturation.p99_ms
    (100.0 *. params.L.Report.slo.L.Saturation.min_completion)
    params.L.Report.duration_ms params.L.Report.seed;
  L.Report.print_header ();
  let rows =
    L.Report.sweep ~progress:L.Report.print_row ~smoke:!smoke_mode params
  in
  if !json_mode then L.Report.write_json ~path:"BENCH_loadgen.json" params rows

(* ----- micro: host-time benchmarks of the simulation core ----- *)

let host_time = Unix.gettimeofday

let timed f =
  let t0 = host_time () in
  let x = f () in
  (x, host_time () -. t0)

(* The kernel's timer pattern: every message arms a retransmit timer
   far in the future and cancels it shortly after.  The queue carries a
   large population of cancelled entries; events/sec counts only live
   events (Engine.step_count). *)
let micro_engine_timer ~iters () =
  let module Eng = Amoeba_sim.Engine in
  let eng = Eng.create ~seed:0xBEEF () in
  let nprocs = 32 in
  let delays = [| 250; 800; 3_000; 9_000; 40_000; 150_000; 1_200_000; 14_000_000 |] in
  for p = 0 to nprocs - 1 do
    Eng.spawn eng (fun () ->
        let timer = ref None in
        for i = 0 to iters - 1 do
          (match !timer with Some h -> Eng.cancel h | None -> ());
          timer := Some (Eng.schedule eng ~after:100_000_000 (fun () -> ()));
          Eng.sleep eng delays.((i + p) land 7)
        done;
        match !timer with Some h -> Eng.cancel h | None -> ())
  done;
  let (), dt = timed (fun () -> Eng.run eng) in
  float_of_int (Eng.step_count eng) /. dt

(* Pure event churn: a thousand concurrent event chains with short
   pseudo-random delays, no cancellations. *)
let micro_engine_churn ~events () =
  let module Eng = Amoeba_sim.Engine in
  let eng = Eng.create ~seed:7 () in
  let remaining = ref events in
  let rec tick salt () =
    if !remaining > 0 then begin
      decr remaining;
      let d = ((salt * 2654435761) land 0xFFFF) + 1 in
      ignore (Eng.schedule eng ~after:d (tick (salt + 1)))
    end
  in
  for i = 0 to 1023 do
    ignore (Eng.schedule eng ~after:((i * 97) land 0x3FFF) (tick i))
  done;
  let (), dt = timed (fun () -> Eng.run eng) in
  float_of_int (Eng.step_count eng) /. dt

let micro_history ~adds () =
  let h = Amoeba_core.History.create ~capacity:128 in
  let payload = T.User Bytes.empty in
  let (), dt =
    timed (fun () ->
        for s = 0 to adds - 1 do
          Amoeba_core.History.add_evicting h
            { Amoeba_core.History.seq = s; sender = 0; msgid = s; ops = 1; payload };
          ignore (Amoeba_core.History.find h (s - 64))
        done)
  in
  float_of_int (2 * adds) /. dt

let micro_pqueue ~rounds () =
  let (), dt =
    timed (fun () ->
        for _ = 1 to rounds do
          let q = Amoeba_sim.Pqueue.create ~cmp:compare in
          for i = 0 to 1023 do
            Amoeba_sim.Pqueue.push q ((i * 7919) mod 1024)
          done;
          while not (Amoeba_sim.Pqueue.is_empty q) do
            ignore (Amoeba_sim.Pqueue.pop q)
          done
        done)
  in
  float_of_int (2 * 1024 * rounds) /. dt

(* The end-to-end throughput benchmark (Fig 4's 8-sender 0B point),
   instrumented for host wall-clock and engine events/sec. *)
let micro_group_tput ~duration_ms () =
  let open Amoeba_core in
  let cl = Cluster.create ~n:8 () in
  let delivered = ref 0 in
  Cluster.spawn cl (fun () ->
      let creator = Api.create_group (Cluster.flip cl 0) () in
      let addr = Api.group_address creator in
      let groups =
        creator
        :: List.init 7 (fun i ->
               Result.get_ok (Api.join_group (Cluster.flip cl (i + 1)) addr))
      in
      List.iter
        (fun g ->
          Cluster.spawn cl (fun () ->
              let rec loop () =
                ignore (Api.receive_from_group g);
                loop ()
              in
              loop ()))
        groups;
      let deadline = Amoeba_sim.Time.ms duration_ms in
      List.iter
        (fun g ->
          Cluster.spawn cl (fun () ->
              let rec loop () =
                if Cluster.now cl < deadline then begin
                  ignore (Api.send_to_group g Bytes.empty);
                  loop ()
                end
              in
              loop ()))
        groups;
      Cluster.spawn cl (fun () ->
          Amoeba_sim.Engine.sleep cl.Cluster.engine deadline;
          delivered := Kernel.next_expected (Api.kernel creator)));
  let (), dt =
    timed (fun () ->
        Cluster.run ~until:(Amoeba_sim.Time.ms (duration_ms * 3)) cl)
  in
  let events = Amoeba_sim.Engine.step_count cl.Cluster.engine in
  let msgs_per_sec =
    float_of_int !delivered /. (float_of_int duration_ms /. 1_000.)
  in
  (float_of_int events /. dt, msgs_per_sec, dt)

(* Numbers measured on the seed tree (commit c14f1a4, "growth seed"),
   with the same workloads and full (non-smoke) parameters, so every
   later run has a fixed trajectory origin.  Units: events or ops per
   second of host time, except wall_s. *)
let seed_baseline : (string * float) list =
  [
    ("engine_timer_events_per_sec", 1_560_000.);
    ("engine_churn_events_per_sec", 3_100_000.);
    ("group_tput_engine_events_per_sec", 2_640_000.);
    ("group_tput_sim_msgs_per_sec", 735.);
    ("group_tput_wall_s", 0.0205);
    ("history_ops_per_sec", 19_800_000.);
    ("pqueue_ops_per_sec", 7_870_000.);
  ]

(* Each metric is the best of [repeats] runs: the workloads are short
   (tens of ms), so a single run is at the mercy of the host
   scheduler; the fastest run is the closest to an interference-free
   measurement. *)
let best_rate ~repeats f =
  let best = ref neg_infinity in
  for _ = 1 to repeats do
    let r = f () in
    if r > !best then best := r
  done;
  !best

let micro () =
  header
    (if !smoke_mode then "Microbenchmarks (host time, smoke parameters)"
     else "Microbenchmarks (host time)")
    "engine events/sec and end-to-end throughput wall-clock; perf trajectory in BENCH_sim.json";
  let iters, events, adds, rounds, duration_ms =
    if !smoke_mode then (200, 20_000, 100_000, 20, 40)
    else (12_000, 1_000_000, 4_000_000, 800, 600)
  in
  let repeats = if !smoke_mode then 1 else 3 in
  let timer_eps = best_rate ~repeats (micro_engine_timer ~iters) in
  let churn_eps = best_rate ~repeats (micro_engine_churn ~events) in
  let hist_ops = best_rate ~repeats (micro_history ~adds) in
  let pq_ops = best_rate ~repeats (micro_pqueue ~rounds) in
  let tput_eps, tput_msgs, tput_wall =
    (* The headline metric and the shortest workload: give it more
       tries than the rest. *)
    let best = ref (neg_infinity, 0., 0.) in
    for _ = 1 to repeats * 2 - 1 do
      let ((eps, _, _) as r) = micro_group_tput ~duration_ms () in
      let best_eps, _, _ = !best in
      if eps > best_eps then best := r
    done;
    !best
  in
  (* The service layer's aggregate committed throughput at the default
     batched configuration (8 shards over 16 hosts, replication 3,
     100 Mbit wire, max_batch 32, pipeline depth 4, 1024 closed-loop
     clients): a simulated-time metric like
     group_tput_sim_msgs_per_sec, tracked so a protocol or service
     regression shows in the same trajectory file as the host-time
     numbers.  No seed baseline: the seed tree predates the service
     layer.  (Through the batching PR this metric measured the
     unbatched 4-shard config at 1 077 ops/s; the batch sweep's
     wire=100/batch=1/depth=1 row keeps tracking that regime.) *)
  let service_ops =
    (fst
       (service_run ~shards:8 ~hosts:16 ~routers:4 ~replication:3
          ~workers:(if !smoke_mode then 96 else 1_024)
          ~duration_ms:(if !smoke_mode then 400 else 2_000)
          ~wire_mbps:100 ~max_batch:32 ~pipeline_depth:4 ~seed:11 ()))
      .Amoeba_service.Workload.ops_per_sec
  in
  let results =
    [
      ("engine_timer_events_per_sec", timer_eps);
      ("engine_churn_events_per_sec", churn_eps);
      ("group_tput_engine_events_per_sec", tput_eps);
      ("group_tput_sim_msgs_per_sec", tput_msgs);
      ("group_tput_wall_s", tput_wall);
      ("history_ops_per_sec", hist_ops);
      ("pqueue_ops_per_sec", pq_ops);
      ("service_agg_sim_ops_per_sec", service_ops);
    ]
  in
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name seed_baseline with
      | Some base when base > 0. ->
          Printf.printf "  %-36s %14.0f   (seed %12.0f, %5.2fx)\n" name v base
            (if String.length name >= 6
                && String.sub name (String.length name - 6) 6 = "wall_s"
             then base /. v
             else v /. base)
      | _ -> Printf.printf "  %-36s %14.0f   (no seed baseline)\n" name v)
    results;
  let payload =
    [
      ("smoke", Bench_json.Bool !smoke_mode);
      ( "baseline",
        Bench_json.Obj
          (("commit", Bench_json.Str "c14f1a4 (growth seed)")
          :: List.map (fun (k, v) -> (k, Bench_json.Float v)) seed_baseline) );
      ( "results",
        Bench_json.Obj (List.map (fun (k, v) -> (k, Bench_json.Float v)) results)
      );
    ]
  in
  if !smoke_mode then
    print_string
      (Bench_json.to_string
         (Bench_json.Obj
            (("schema", Bench_json.Str "amoeba-bench/1")
             :: ("suite", Bench_json.Str "sim") :: payload)))
  else begin
    let saved = !json_mode in
    json_mode := true;
    json_out "sim" payload;
    json_mode := saved
  end

let targets : (string * (unit -> unit)) list =
  [
    ("headline", headline);
    ("fig1", fig1);
    ("table3", table3);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("rpc_compare", rpc_compare);
    ("ablation_cm", ablation_cm);
    ("ablation_migrate", ablation_migrate);
    ("ablation_pbbb", ablation_pbbb);
    ("ablation_processing", ablation_processing);
    ("ablation_userspace", ablation_userspace);
    ("ablation_history", ablation_history);
    ("ablation_flowcontrol", ablation_flowcontrol);
    ("load_latency", fig_load_latency);
    ("service", service);
    ("batch", batch);
    ("recovery", recovery);
    ("fabric", fabric);
    ("migration", migration);
    ("loadgen", loadgen);
    ("micro", micro);
  ]

let () =
  let args =
    List.filter
      (fun a ->
        match a with
        | "--json" ->
            json_mode := true;
            false
        | "--smoke" ->
            smoke_mode := true;
            false
        | _ -> true)
      (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match args with _ :: _ as names -> names | [] -> List.map fst targets
  in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown target %S; available: %s\n" name
            (String.concat " " (List.map fst targets));
          exit 1)
    requested
