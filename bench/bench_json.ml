(* Minimal JSON emitter for the BENCH_*.json files.  No external
   dependency: the schema is small and write-only (see bench/README.md). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.6g" x

let rec emit buf ~indent j =
  let pad n = String.make n ' ' in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          emit buf ~indent:(indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf ~indent:(indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  emit buf ~indent:0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file path j =
  let oc = open_out path in
  output_string oc (to_string j);
  close_out oc;
  Printf.printf "wrote %s\n%!" path
