(* A command-line explorer for the simulated Amoeba group system:
   point measurements, protocol traces and the cost model, without
   editing any benchmark code.

     amoeba delay --members 8 --size 1024 --method bb
     amoeba throughput --senders 16 --resilience 2
     amoeba multigroup --groups 5 --members 2
     amoeba trace
     amoeba costs *)

open Cmdliner
open Amoeba_harness
module T = Amoeba_core.Types
module E = Experiments

let method_conv =
  let parse = function
    | "pb" -> Ok T.Pb
    | "bb" -> Ok T.Bb
    | "auto" -> Ok T.Auto
    | s -> Error (`Msg (Printf.sprintf "unknown method %S (pb|bb|auto)" s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with T.Pb -> "pb" | T.Bb -> "bb" | T.Auto -> "auto")
  in
  Arg.conv (parse, print)

(* --net takes a '+'-separated spec: each component is either a fabric
   (ether | shared | switch | switch:SxH[@U]) or a condition profile.
   The profile table lives in {!Amoeba_net.Medium.condition_profiles},
   so the CLI, the adversarial swarm test and the loadgen sweep share
   one notion of what e.g. "bursty" means. *)
let net_conv =
  let parse s =
    Result.map_error (fun e -> `Msg e) (Amoeba_net.Medium.net_of_string s)
  in
  let print fmt nc =
    Format.pp_print_string fmt (Amoeba_net.Medium.net_to_string nc)
  in
  Arg.conv (parse, print)

let net_t =
  Arg.(
    value
    & opt net_conv (Amoeba_net.Medium.Shared, Amoeba_net.Medium.clean)
    & info [ "net" ]
        ~doc:
          "Fabric and/or link conditions, '+'-separated.  Fabric: ether \
           (shared CSMA/CD wire, default), switch (one full-duplex \
           switch), or switch:SxH\xc2\xa0/\xc2\xa0switch:SxH@U (S segments of H \
           ports, uplink U-times oversubscribed).  Conditions: clean, \
           bursty-light, bursty, bursty-heavy (Gilbert\xe2\x80\x93Elliott \
           loss), dup, reorder (delivery jitter), corrupt, or adversarial \
           (all of them, moderate).  Example: switch:2x48@10+bursty.")

let disk_conv =
  let open Amoeba_net.Cost_model in
  let parse s =
    match List.assoc_opt s disk_profiles with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown disk profile %S (%s)" s
               (String.concat "|" (List.map fst disk_profiles))))
  in
  let print fmt d =
    Format.pp_print_string fmt
      (match List.find_opt (fun (_, d') -> d' = d) disk_profiles with
      | Some (name, _) -> name
      | None -> "<custom>")
  in
  Arg.conv (parse, print)

let disk_t =
  Arg.(
    value
    & opt (some disk_conv) None
    & info [ "disk" ]
        ~doc:
          "Give every machine a local disk with this timing profile \
           (hdd1996, hdd, ssd, nvme) and turn on durable mode: committed \
           work is WAL-logged and survives restarts.  Without it nothing \
           touches a disk and all simulated figures are unchanged.")

let members_t =
  Arg.(value & opt int 8 & info [ "m"; "members" ] ~doc:"Group size.")

let size_t =
  Arg.(value & opt int 0 & info [ "s"; "size" ] ~doc:"Message size in bytes.")

let method_t =
  Arg.(value & opt method_conv T.Pb & info [ "method" ] ~doc:"pb, bb or auto.")

let resilience_t =
  Arg.(value & opt int 0 & info [ "r"; "resilience" ] ~doc:"Resilience degree.")

let delay_cmd =
  let run members size method_ r (fabric, net) =
    let d =
      E.broadcast_delay ~samples:20 ~resilience:r ~fabric ~net ~n:members ~size
        ~send_method:method_ ()
    in
    Printf.printf
      "SendToGroup delay, %d members, %d bytes, r=%d: mean %.2f ms (min %.2f, max %.2f, %d samples)\n"
      members size r d.E.mean_ms d.E.min_ms d.E.max_ms d.E.samples
  in
  Cmd.v (Cmd.info "delay" ~doc:"Measure broadcast delay (paper Figs 1/3/7).")
    Term.(const run $ members_t $ size_t $ method_t $ resilience_t $ net_t)

let throughput_cmd =
  let senders_t =
    Arg.(value & opt int 8 & info [ "senders" ] ~doc:"Senders (= group size).")
  in
  let duration_t =
    Arg.(value & opt int 2000 & info [ "duration" ] ~doc:"Simulated ms.")
  in
  let run senders size method_ r duration =
    let t =
      E.group_throughput ~duration_ms:duration ~resilience:r ~n:senders ~size
        ~send_method:method_ ()
    in
    Printf.printf
      "throughput, %d senders, %d bytes, r=%d: %.0f msg/s (%d ring drops, %d retransmissions)%s\n"
      senders size r t.E.msgs_per_sec t.E.rx_dropped t.E.retransmissions
      (if t.E.meaningful then "" else "  [NOT MEANINGFUL: retransmission-bound]")
  in
  Cmd.v
    (Cmd.info "throughput" ~doc:"Measure group throughput (paper Figs 4/5/8).")
    Term.(const run $ senders_t $ size_t $ method_t $ resilience_t $ duration_t)

let multigroup_cmd =
  let groups_t = Arg.(value & opt int 5 & info [ "groups" ] ~doc:"Groups.") in
  let run groups members =
    let r = E.multigroup_throughput ~groups ~members () in
    Printf.printf
      "%d groups x %d members: %.0f msg/s total, %.0f%% Ethernet utilisation, %d collisions\n"
      groups members r.E.total_msgs_per_sec
      (100. *. r.E.ether_utilisation)
      r.E.collisions
  in
  Cmd.v
    (Cmd.info "multigroup" ~doc:"Disjoint groups on one Ethernet (paper Fig 6).")
    Term.(const run $ groups_t $ members_t)

let trace_cmd =
  let run () =
    let layers, total = E.critical_path () in
    print_endline "critical path of one 0-byte SendToGroup (group of 2, PB):";
    List.iter (fun (l, us) -> Printf.printf "  %-8s %7.0f us\n" l us) layers;
    Printf.printf "  %-8s %7.0f us (measured end to end)\n" "total" total;
    Printf.printf "  (paper Table 3: total 2740 us, group layer 740 us)\n"
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Per-layer critical path (paper Fig 2 / Table 3).")
    Term.(const run $ const ())

let costs_cmd =
  let run () =
    let c = Amoeba_net.Cost_model.default in
    print_endline "simulated testbed (20-MHz MC68030, Lance, 10 Mbit/s Ethernet):";
    let row name v = Printf.printf "  %-22s %8d ns\n" name v in
    row "interrupt" c.interrupt_ns;
    row "driver tx / rx" c.driver_tx_ns;
    row "copy (per byte)" c.copy_ns_per_byte;
    row "context switch" c.context_switch_ns;
    row "flip tx / rx" c.flip_tx_ns;
    row "group send" c.group_send_ns;
    row "group sequencer" c.group_seq_ns;
    row "  + per member" c.group_seq_member_ns;
    row "group deliver" c.group_deliver_ns;
    Printf.printf "  %-22s %8d bytes\n" "header stack"
      (Amoeba_net.Cost_model.headers_total c);
    Printf.printf "  %-22s %8d frames\n" "lance rx ring" c.rx_ring_frames;
    Printf.printf "  %-22s %8d messages\n" "history buffer" c.history_buffer
  in
  Cmd.v (Cmd.info "costs" ~doc:"Print the calibrated cost model.")
    Term.(const run $ const ())

let rpc_cmd =
  let run () =
    Printf.printf "null RPC: %.2f ms (paper: 2.8)\n" (E.null_rpc_delay_ms ())
  in
  Cmd.v (Cmd.info "rpc" ~doc:"Measure the null RPC baseline.")
    Term.(const run $ const ())

let chaos_cmd =
  let seed_t =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Schedule/workload seed.")
  in
  let chaos_members_t =
    Arg.(value & opt int 4 & info [ "m"; "members" ] ~doc:"Group size.")
  in
  let msgs_t =
    Arg.(value & opt int 4 & info [ "msgs" ] ~doc:"Messages per member.")
  in
  let schedule_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ]
          ~doc:
            "Explicit fault schedule (the format printed by a run), \
             overriding the seed-derived one.")
  in
  let chaos_groups_t =
    Arg.(
      value & opt int 1
      & info [ "groups" ]
          ~doc:
            "Concurrent groups sharing the wire (sequencers spread over \
             machines); invariants are checked independently per group.")
  in
  let run seed members groups r method_ msgs schedule (fabric, net) disk =
    let schedule =
      match (schedule, disk) with
      | Some s, _ -> Some (Fault.of_string s)
      | None, Some _ ->
          (* Durable mode widens the seeded generator to draw one
             whole-cluster power cycle on top of the base schedule. *)
          Some (Fault.random ~seed ~n:members ~power_cycles:true ())
      | None, None -> None
    in
    let o =
      Chaos.run ~n:members ~groups ~resilience:r ~send_method:method_ ~msgs
        ?schedule ~net ~fabric ?disk ~seed ()
    in
    Chaos.print_report o;
    if not (Chaos.ok o) then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Replay a seeded fault-injection run and check the total-order, \
          delivery, durability, incarnation and (with --disk) \
          durable-recovery invariants.")
    Term.(
      const run $ seed_t $ chaos_members_t $ chaos_groups_t $ resilience_t
      $ method_t $ msgs_t $ schedule_t $ net_t $ disk_t)

(* ----- the sharded service layer ----- *)

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")

let shards_t =
  Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Number of shards (groups).")

let hosts_t =
  Arg.(
    value & opt int 8
    & info [ "hosts" ] ~doc:"Machines available to host replicas.")

let replication_t =
  Arg.(value & opt int 3 & info [ "replication" ] ~doc:"Replicas per shard.")

let max_batch_t =
  Arg.(
    value & opt int 32
    & info [ "max-batch" ]
        ~doc:
          "Router-side op batching: up to this many ops for one shard are \
           shipped as one RPC, which the replica submits as one sequencer \
           round (1 disables batching).")

let batch_delay_t =
  Arg.(
    value & opt int 500
    & info [ "batch-delay-us" ]
        ~doc:
          "Nagle-style flush timer in microseconds: a partial batch ships \
           when this much time has passed since its first op.")

let pipeline_depth_t =
  Arg.(
    value & opt int 4
    & info [ "pipeline-depth" ]
        ~doc:
          "Unacknowledged sequencer rounds each replica kernel may keep in \
           flight (1 = the paper's lock-step send).")

let serve_cmd =
  let run shards hosts replication r seed max_batch batch_delay_us
      pipeline_depth =
    let open Amoeba_sim in
    let open Amoeba_service in
    let host_list = List.init hosts Fun.id in
    let map = Shard_map.create ~shards ~replication ~hosts:host_list () in
    Format.printf "%a@." Shard_map.pp map;
    let n = hosts + 1 in
    let cl = Cluster.create ~seed ~n () in
    Cluster.spawn cl (fun () ->
        let svc =
          Service.deploy cl ~map ~resilience:r ~pipeline:pipeline_depth ()
        in
        let router =
          Router.create (Cluster.flip cl hosts) ~map ~max_batch
            ~pipeline:(if max_batch > 1 then 1 else 4)
            ~batch_delay:(Time.us batch_delay_us)
            ~endpoints:(Service.endpoints svc) ()
        in
        for i = 0 to (4 * shards) - 1 do
          ignore
            (Router.put router
               (Printf.sprintf "demo-%d" i)
               (Printf.sprintf "value-%d" i))
        done;
        Engine.sleep cl.Cluster.engine (Amoeba_sim.Time.ms 300);
        Printf.printf "service up: %d shard(s) x %d replica(s), %d demo writes\n"
          shards
          (Shard_map.replication map)
          (Service.writes_ok svc);
        for s = 0 to shards - 1 do
          Printf.printf "  shard %d applied:" s;
          List.iter
            (fun (host, a) -> Printf.printf " m%d=%d" host a)
            (Service.applied svc s);
          print_newline ()
        done);
    Cluster.run ~until:(Amoeba_sim.Time.sec 60) cl
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Deploy the sharded key/value service (one replicated group per \
          shard) and show its placement.")
    Term.(
      const run $ shards_t $ hosts_t $ replication_t $ resilience_t $ seed_t
      $ max_batch_t $ batch_delay_t $ pipeline_depth_t)

let workload_cmd =
  let routers_t =
    Arg.(
      value & opt int 4
      & info [ "routers" ] ~doc:"Client machines, one router each.")
  in
  let keys_t =
    Arg.(value & opt int 1000 & info [ "keys" ] ~doc:"Key space size.")
  in
  let value_bytes_t =
    Arg.(value & opt int 32 & info [ "value-bytes" ] ~doc:"Value size.")
  in
  let read_ratio_t =
    Arg.(
      value & opt float 0.0
      & info [ "read-ratio" ] ~doc:"Fraction of reads (0.0 - 1.0).")
  in
  let dist_t =
    Arg.(
      value & opt string "uniform"
      & info [ "dist" ]
          ~doc:
            "Key popularity: uniform, zipf, or latest (YCSB-D's \
             read-latest: a Zipf-distributed offset back from the newest \
             key).")
  in
  let skew_t =
    Arg.(
      value & opt float 0.99
      & info [ "skew" ] ~doc:"Skew exponent (with --dist zipf or latest).")
  in
  let workers_t =
    Arg.(
      value & opt int 16
      & info [ "workers" ] ~doc:"Closed-loop clients (ignored with --rate).")
  in
  let rate_t =
    Arg.(
      value & opt (some float) None
      & info [ "rate" ] ~doc:"Open-loop arrival rate (ops per second).")
  in
  let duration_t =
    Arg.(value & opt int 5000 & info [ "duration" ] ~doc:"Simulated ms.")
  in
  let ramp_t =
    Arg.(
      value & opt int 0
      & info [ "ramp-ms" ]
          ~doc:
            "Closed-loop slow start: stagger worker startup over this \
             many simulated ms instead of unleashing the whole herd at \
             t=0 (thousands of first-contact clients starve every CPU \
             at once and the group kernels read the stall as member \
             failures).  0 keeps the all-at-once start.")
  in
  let crash_seq_t =
    Arg.(
      value & flag
      & info [ "crash-sequencer" ]
          ~doc:
            "Crash shard 0's sequencer machine halfway through and check the \
             chaos invariants per shard afterwards (requires resilience >= \
             1 for the durability check).  The group auto-heals while the \
             router keeps serving from the surviving replicas.")
  in
  let crash_follower_t =
    Arg.(
      value & flag
      & info [ "crash-follower" ]
          ~doc:
            "Crash shard 0's first follower replica halfway through.  The \
             follower is in the router's serving rotation (sequencer-host \
             endpoints are held in reserve), so this exercises the router's \
             probe/suspect/failover path; invariants are checked per shard \
             afterwards.")
  in
  let wire_t =
    Arg.(
      value & opt int 10
      & info [ "wire-mbps" ]
          ~doc:
            "Ethernet bit rate in Mbit/s (default 10, the paper's testbed). \
             On the shared 10 Mbit wire the medium itself saturates near 850 \
             ops/s whatever the shard count; 100 makes the machines the \
             bottleneck again, the regime where shards scale.")
  in
  let checkpoint_every_t =
    Arg.(
      value & opt int 64
      & info [ "checkpoint-every" ]
          ~doc:
            "With --disk: each replica checkpoints its state and trims the \
             WAL every this many applied updates (0 never checkpoints).")
  in
  let fsync_t =
    let open Amoeba_grouplib.Rsm in
    let fsync_conv =
      let parse = function
        | "commit" -> Ok Every_commit
        | "group" -> Ok (Group_fsync 8)
        | "checkpoint" -> Ok Checkpoint_only
        | s ->
            Error
              (`Msg
                (Printf.sprintf "unknown fsync policy %S \
                                 (commit|group|checkpoint)" s))
      in
      let print fmt p =
        Format.pp_print_string fmt
          (match p with
          | Every_commit -> "commit"
          | Group_fsync _ -> "group"
          | Checkpoint_only -> "checkpoint")
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value & opt fsync_conv (Group_fsync 8)
      & info [ "fsync" ]
          ~doc:
            "With --disk: when a replica fsyncs its WAL.  'commit' syncs \
             every applied update (every acked write survives a power \
             loss), 'group' every 8th (bounded trailing-window loss), \
             'checkpoint' only at checkpoints.")
  in
  let power_cycle_t =
    Arg.(
      value & flag
      & info [ "power-cycle" ]
          ~doc:
            "Requires --disk.  Write sentinel keys a quarter of the way \
             through, power off EVERY server host at the halfway mark, \
             restart them ~275 simulated ms later, recover the whole \
             service from its disks, repoint the routers, and read the \
             sentinels back.  With --fsync commit any acked sentinel lost \
             across the cycle fails the run (exit 1); weaker policies \
             report trailing-window losses without failing.")
  in
  let stale_reads_t =
    Arg.(
      value & flag
      & info [ "stale-reads" ]
          ~doc:
            "Routers issue bounded-staleness gets, answered from each \
             replica's last durable checkpoint (the durable frontier) \
             instead of the live state.")
  in
  let migrate_t =
    Arg.(
      value & flag
      & info [ "migrate" ]
          ~doc:
            "Live-migrate shard 0 onto fresh hosts a third of the way \
             through, while the workload keeps running: the destinations \
             join the running group (atomic checkpoint + delta state \
             transfer), the sequencer role cuts over view-synchronously \
             and the routers repoint.  Prints the migration window.  \
             Needs enough hosts free of shard 0 replicas to hold a full \
             replica set.")
  in
  let rebalance_t =
    Arg.(
      value & flag
      & info [ "rebalance" ]
          ~doc:
            "Start the elastic rebalancer: sample per-shard load every \
             250 simulated ms, and when one machine's sequencing load \
             exceeds twice the pool mean, live-migrate the hottest shard \
             it sequences onto the coldest fresh hosts.  Pair with --dist \
             zipf, whose hot-key skew is what trips it.")
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Also print the measured result as a JSON object.  The JSON \
             figures read the same ramp-excluded accumulator as the text \
             figures, so the two cannot disagree about warmup exclusion.")
  in
  let run shards hosts routers replication r keys value_bytes read_ratio dist
      skew workers rate duration_ms ramp_ms seed (fabric, net) wire_mbps
      crash_seq
      crash_follower
      max_batch batch_delay_us pipeline_depth disk checkpoint_every fsync
      power_cycle stale_reads migrate rebalance json =
    let open Amoeba_sim in
    let open Amoeba_service in
    let dist =
      match dist with
      | "uniform" -> Workload.Uniform
      | "zipf" -> Workload.Zipf skew
      | "latest" -> Workload.Latest skew
      | s ->
          Printf.eprintf "unknown distribution %S (uniform|zipf|latest)\n" s;
          exit 2
    in
    if power_cycle && disk = None then begin
      Printf.eprintf "--power-cycle needs a disk (pass --disk)\n";
      exit 2
    end;
    let host_list = List.init hosts Fun.id in
    let map = Shard_map.create ~shards ~replication ~hosts:host_list () in
    let n = hosts + routers in
    let cost =
      let base = Amoeba_net.Cost_model.(with_mbps wire_mbps default) in
      match disk with
      | Some d -> { base with Amoeba_net.Cost_model.disk = d }
      | None -> base
    in
    let cl = Cluster.create ~cost ~seed ~fabric ~n () in
    let eng = cl.Cluster.engine in
    let duration = Amoeba_sim.Time.ms duration_ms in
    let failed = ref false in
    let crashing = crash_seq || crash_follower in
    (* Invariants are checked whenever the run disturbs the service —
       crashes, live migration, elastic rebalancing — not only on the
       crash paths: a migration that loses or duplicates a write must
       fail the run (exit 1), not just print throughput.  The record
       tap is a pure callback with no simulated cost, so enabling it
       does not move any measured figure. *)
    let checking = crashing || migrate || rebalance in
    let durable =
      Option.map
        (fun _ ->
          {
            Service.d_store = Amoeba_grouplib.Stable_store.create ();
            d_sync = fsync;
            d_checkpoint_every = checkpoint_every;
          })
        disk
    in
    Cluster.spawn cl (fun () ->
        if net <> Amoeba_net.Medium.clean then
          Amoeba_net.Medium.set_conditions cl.Cluster.net net;
        let svc =
          Service.deploy cl ~map ~resilience:r ~pipeline:pipeline_depth
            ~record:checking ?durable ()
        in
        (* In batching mode one worker per shard is the sweet spot: a
           single accumulation-and-ship pipeline per (router, shard)
           forms the largest batches and keeps replica endpoints
           uncontended; concurrency across routers and the kernel's
           pipelining cover the in-flight depth. *)
        let rs =
          List.init routers (fun i ->
              Router.create
                (Cluster.flip cl (hosts + i))
                ~map ~max_batch ~stale_reads
                ~pipeline:(if max_batch > 1 then 1 else 4)
                ~batch_delay:(Amoeba_sim.Time.us batch_delay_us)
                ~endpoints:(Service.endpoints svc) ())
        in
        (if power_cycle then
           let dc = Option.get durable in
           Cluster.spawn cl (fun () ->
               Engine.sleep eng (duration / 4);
               (* Sentinel writes: the acked ones are the durability
                  obligations the cycle must not revoke. *)
               let router0 = List.hd rs in
               let acked = ref [] in
               for i = 0 to 9 do
                 let k = Printf.sprintf "sentinel-%d" i in
                 match Router.put router0 k (Printf.sprintf "s%d" i) with
                 | Router.Written -> acked := i :: !acked
                 | _ -> ()
               done;
               let cut = duration / 2 in
               let now = Engine.now eng in
               if cut > now then Engine.sleep eng (cut - now);
               Printf.printf
                 "power loss: all %d server hosts down at t=%.1fs\n%!" hosts
                 (Amoeba_sim.Time.to_sec (Engine.now eng));
               List.iter
                 (fun h -> Amoeba_net.Machine.crash (Cluster.machine cl h))
                 host_list;
               Engine.sleep eng (Amoeba_sim.Time.ms 275);
               List.iter (fun h -> Cluster.restart cl h) host_list;
               let svc' =
                 Service.recover cl ~map ~durable:dc ~resilience:r
                   ~pipeline:pipeline_depth ()
               in
               List.iter
                 (fun router ->
                   Router.update_endpoints router (Service.endpoints svc'))
                 rs;
               List.iter
                 (fun sr ->
                   Printf.printf "recovered: shard %d from m%d at %d applied (%s)\n%!"
                     sr.Service.sr_shard sr.Service.sr_creator
                     sr.Service.sr_applied
                     (String.concat ", "
                        (List.map
                           (fun hr ->
                             Printf.sprintf "m%d:%s" hr.Service.hr_host
                               (match hr.Service.hr_error with
                               | Some _ -> "refused"
                               | None -> string_of_int hr.Service.hr_applied))
                           sr.Service.sr_hosts)))
                 (Service.recovery_report svc');
               let lost = ref [] in
               List.iter
                 (fun i ->
                   let k = Printf.sprintf "sentinel-%d" i in
                   match Router.get router0 k with
                   | Router.Value _ -> ()
                   | _ -> lost := k :: !lost)
                 (List.rev !acked);
               Printf.printf "sentinels: %d acked, %d lost across the cycle%s\n%!"
                 (List.length !acked) (List.length !lost)
                 (if !lost = [] then ""
                  else " (" ^ String.concat ", " !lost ^ ")");
               match (dc.Service.d_sync, !lost) with
               | _, [] -> ()
               | Amoeba_grouplib.Rsm.Every_commit, _ ->
                   Printf.printf
                     "FAIL: acked writes lost under fsync-per-commit\n%!";
                   failed := true
               | _ ->
                   Printf.printf
                     "(allowed by the fsync policy's trailing window)\n%!"));
        let repoint () =
          List.iter
            (fun router -> Router.update_endpoints router (Service.endpoints svc))
            rs
        in
        let pp_hosts hs =
          String.concat "," (List.map (Printf.sprintf "m%d") hs)
        in
        (if migrate then
           Cluster.spawn cl (fun () ->
               Engine.sleep eng (duration / 3);
               let cur = Shard_map.replica_hosts (Service.map svc) 0 in
               let free =
                 List.filter (fun h -> not (List.mem h cur)) host_list
               in
               let k = List.length cur in
               if List.length free < k then
                 Printf.printf
                   "migrate: only %d hosts free of shard 0 replicas, %d \
                    needed\n%!"
                   (List.length free) k
               else begin
                 let tgt = List.filteri (fun i _ -> i < k) free in
                 let t0 = Engine.now eng in
                 match Service.migrate_shard svc ~shard:0 ~hosts:tgt () with
                 | Ok () ->
                     repoint ();
                     Printf.printf
                       "migrated:  shard 0 [%s] -> [%s] in %.1f simulated ms\n%!"
                       (pp_hosts cur)
                       (pp_hosts (Shard_map.replica_hosts (Service.map svc) 0))
                       (Amoeba_sim.Time.to_sec (Engine.now eng - t0) *. 1000.)
                 | Error e -> Printf.printf "migrate: failed: %s\n%!" e
               end));
        (if rebalance then
           ignore
             (Rebalancer.start cl svc
                ~on_move:(fun mv ->
                  match mv.Rebalancer.mv_result with
                  | Ok () ->
                      repoint ();
                      Printf.printf
                        "rebalanced: shard %d [%s] -> [%s] at t=%.1fs\n%!"
                        mv.Rebalancer.mv_shard
                        (pp_hosts mv.Rebalancer.mv_from)
                        (pp_hosts mv.Rebalancer.mv_to)
                        (Amoeba_sim.Time.to_sec mv.Rebalancer.mv_time)
                  | Error e ->
                      Printf.printf "rebalance: shard %d move failed: %s\n%!"
                        mv.Rebalancer.mv_shard e)
                ()));
        let crash_at delay what h =
          Cluster.spawn cl (fun () ->
              Engine.sleep eng delay;
              Printf.printf "crashing m%d (shard 0's %s) at t=%.1fs\n%!" h what
                (Amoeba_sim.Time.to_sec (Engine.now eng));
              Amoeba_net.Machine.crash (Cluster.machine cl h))
        in
        let crashed =
          (if crash_seq then begin
             let h = Shard_map.sequencer_host map 0 in
             crash_at (duration / 2) "sequencer" h;
             [ h ]
           end
           else [])
          @
          if crash_follower then begin
            match Shard_map.replica_hosts map 0 with
            | _seq :: follower :: _ ->
                crash_at (duration / 2) "serving follower" follower;
                [ follower ]
            | _ ->
                Printf.eprintf "--crash-follower needs replication >= 2\n";
                exit 2
          end
          else []
        in
        let mode =
          match rate with
          | Some rate -> Workload.Open rate
          | None -> Workload.Closed workers
        in
        let spec =
          {
            Workload.keys;
            value_bytes;
            read_ratio;
            dist;
            mode;
            duration;
            ramp = Amoeba_sim.Time.ms ramp_ms;
            seed;
          }
        in
        let res = Workload.run cl ~routers:rs ~map spec in
        Format.printf "%a@." Workload.pp_result res;
        if json then
          print_string
            (Bench_json.to_string
               (Bench_json.Obj
                  [
                    ("attempted", Bench_json.Int res.Workload.attempted);
                    ("completed", Bench_json.Int res.Workload.completed);
                    ("failed", Bench_json.Int res.Workload.failed);
                    ("ops_per_sec", Bench_json.Float res.Workload.ops_per_sec);
                    ("mean_ms", Bench_json.Float res.Workload.mean_ms);
                    ("p50_ms", Bench_json.Float res.Workload.p50_ms);
                    ("p95_ms", Bench_json.Float res.Workload.p95_ms);
                    ("p99_ms", Bench_json.Float res.Workload.p99_ms);
                    ("max_ms", Bench_json.Float res.Workload.max_ms);
                    ("reads", Bench_json.Int res.Workload.reads);
                    ("writes", Bench_json.Int res.Workload.writes);
                    ( "per_shard",
                      Bench_json.List
                        (List.map
                           (fun c -> Bench_json.Int c)
                           (Array.to_list res.Workload.per_shard)) );
                  ]));
        let agg f = List.fold_left (fun a r -> a + f (Router.stats r)) 0 rs in
        Printf.printf
          "routers:   %d ops, %d retries, %d failovers, %d dead probes\n"
          (agg (fun s -> s.Router.ops))
          (agg (fun s -> s.Router.retries))
          (agg (fun s -> s.Router.failovers))
          (agg (fun s -> s.Router.probes_dead));
        let batches = agg (fun s -> s.Router.batches_sent) in
        let batched_ops = agg (fun s -> s.Router.ops_batched) in
        Printf.printf
          "batching:  %d batches (%.1f ops/batch avg), %d partial flushes, %d \
           batch retries\n"
          batches
          (if batches = 0 then 1.
           else float_of_int batched_ops /. float_of_int batches)
          (agg (fun s -> s.Router.partial_flushes))
          (agg (fun s -> s.Router.batch_retries));
        Printf.printf "service:   %d reads, %d writes ok, %d busy rejections\n"
          (Service.reads svc) (Service.writes_ok svc) (Service.writes_busy svc);
        (* Per-replica applied counts by shard: identical numbers mean a
           healthy group, divergent ones a fissioned membership — the
           fingerprint that cracked the 32-shard herd collapse.  Env-
           gated so normal output stays stable for the smoke aliases. *)
        (try
           if Sys.getenv "AMOEBA_SHARD_DEBUG" = "1" then
             for s = 0 to shards - 1 do
               Printf.printf "shard %d applied: %s\n" s
                 (String.concat " "
                    (List.map
                       (fun (h, a) -> Printf.sprintf "m%d:%d" h a)
                       (Service.applied svc s)))
             done
         with Not_found -> ());
        let m = cl.Cluster.net in
        Printf.printf
          "fabric:    %.1f%% utilisation, %d frames, %d KB, %d collisions, %d \
           queue drops\n"
          (100. *. Amoeba_net.Medium.utilisation m)
          (Amoeba_net.Medium.frames_delivered m)
          (Amoeba_net.Medium.bytes_delivered m / 1024)
          (Amoeba_net.Medium.collisions m)
          (Amoeba_net.Medium.queue_drops m);
        (match durable with
        | None -> ()
        | Some dc ->
            let c = Amoeba_grouplib.Stable_store.counters dc.Service.d_store in
            let module S = Amoeba_grouplib.Stable_store in
            Printf.printf
              "storage:   %d wal appends, %d fsyncs, %d checkpoints, %d wal \
               trims, %d writes lost to dead machines\n"
              c.S.wal_appends c.S.fsyncs c.S.kv_writes c.S.wal_trims
              c.S.writes_dropped;
            if power_cycle then
              Printf.printf
                "replayed:  %d records recovered, %d torn tails truncated, %d \
                 checksum rejects\n"
                c.S.records_replayed c.S.torn_tails c.S.checksum_rejects);
        if stale_reads then
          Printf.printf "stale:     %d bounded-staleness gets\n"
            (agg (fun s -> s.Router.stale_gets));
        if checking then begin
          List.iter
            (fun (shard, vs) ->
              List.iter
                (fun v ->
                  Format.printf "shard %d: %a@." shard Checker.pp_verdict v;
                  if not v.Checker.ok then failed := true)
                vs)
            (Service.check svc ~crashed);
          Printf.printf "verdict:   %s\n"
            (if !failed then "FAIL" else "PASS")
        end);
    Cluster.run ~until:(duration + Amoeba_sim.Time.sec 60) cl;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "Drive the sharded service with a measured open- or closed-loop \
          key/value workload (aggregate throughput, latency percentiles).")
    Term.(
      const run $ shards_t $ hosts_t $ routers_t $ replication_t $ resilience_t
      $ keys_t $ value_bytes_t $ read_ratio_t $ dist_t $ skew_t $ workers_t
      $ rate_t $ duration_t $ ramp_t $ seed_t $ net_t $ wire_t $ crash_seq_t
      $ crash_follower_t $ max_batch_t $ batch_delay_t $ pipeline_depth_t
      $ disk_t $ checkpoint_every_t $ fsync_t $ power_cycle_t $ stale_reads_t
      $ migrate_t $ rebalance_t $ json_t)

let migration_chaos_cmd =
  let seed_t =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scenario seed.")
  in
  let crash_source_t =
    Arg.(
      value & flag
      & info [ "crash-source" ]
          ~doc:"Crash the source sequencer machine mid-migration.")
  in
  let crash_dest_t =
    Arg.(
      value & flag
      & info [ "crash-dest" ]
          ~doc:"Crash the destination head machine mid-migration.")
  in
  let power_cycle_t =
    Arg.(
      value & flag
      & info [ "power-cycle" ]
          ~doc:
            "Power off every server host mid-migration, restart 275 ms \
             later, recover from the union of old and new replica disks, \
             and read back the pre-migration sentinels (fsync-per-commit: \
             any acked sentinel lost fails the run).")
  in
  let workers_t =
    Arg.(value & opt int 8 & info [ "workers" ] ~doc:"Closed-loop clients.")
  in
  let duration_t =
    Arg.(value & opt int 1200 & info [ "duration" ] ~doc:"Simulated ms.")
  in
  let run seed (fabric, net) crash_source crash_dest power_cycle workers
      duration_ms =
    let open Amoeba_service in
    let spec =
      {
        Migration_chaos.mc_seed = seed;
        mc_fabric = fabric;
        mc_hostile = net <> Amoeba_net.Medium.clean;
        mc_crash_source = crash_source;
        mc_crash_dest = crash_dest;
        mc_power_cycle = power_cycle;
        mc_workers = workers;
        mc_duration_ms = duration_ms;
      }
    in
    let o = Migration_chaos.run spec in
    Format.printf "%a@." Migration_chaos.pp_outcome o;
    if not (Migration_chaos.ok o) then exit 1
  in
  Cmd.v
    (Cmd.info "migration-chaos"
       ~doc:
         "Replay a seeded mid-migration chaos run: live-migrate a shard \
          under a running Zipf workload while crashing the source \
          sequencer, the destination, and/or power-cycling the cluster, \
          then check migration-safety plus the classic invariants.")
    Term.(
      const run $ seed_t $ net_t $ crash_source_t $ crash_dest_t
      $ power_cycle_t $ workers_t $ duration_t)

let loadgen_cmd =
  let module L = Amoeba_loadgen in
  let mix_t =
    Arg.(
      value & opt string "a"
      & info [ "mix" ]
          ~doc:
            "YCSB mix: a (50/50 update-heavy, Zipf), b (95/5 read-mostly, \
             Zipf), c (read-only, Zipf), d (95/5 read-latest + inserts).")
  in
  let txn_ratio_t =
    Arg.(
      value & opt float 0.0
      & info [ "txn-ratio" ]
          ~doc:
            "Fraction of operations issued as multi-key single-shard \
             read-modify-write transactions (taken from the mix's update \
             share first).")
  in
  let txn_size_t =
    Arg.(
      value & opt int 3
      & info [ "txn-size" ] ~doc:"Keys per multi-key transaction.")
  in
  let keys_t =
    Arg.(value & opt int 1_000 & info [ "keys" ] ~doc:"Key space size.")
  in
  let value_dist_t =
    Arg.(
      value & opt string "fixed:32"
      & info [ "value-dist" ]
          ~doc:
            "Value size distribution: fixed:N, uniform:MIN:MAX, or \
             lognormal:MEDIAN:SIGMA.")
  in
  let shards_t =
    Arg.(value & opt int 1 & info [ "shards" ] ~doc:"Shard count.")
  in
  let hosts_t =
    Arg.(value & opt int 4 & info [ "hosts" ] ~doc:"Replica host machines.")
  in
  let routers_t =
    Arg.(value & opt int 2 & info [ "routers" ] ~doc:"Router machines.")
  in
  let replication_t =
    Arg.(value & opt int 2 & info [ "replication" ] ~doc:"Replicas per shard.")
  in
  let wire_t =
    Arg.(value & opt int 100 & info [ "wire-mbps" ] ~doc:"Wire speed, Mbit/s.")
  in
  let max_batch_t =
    Arg.(value & opt int 32 & info [ "max-batch" ] ~doc:"Router op batching.")
  in
  let pipeline_depth_t =
    Arg.(
      value & opt int 4
      & info [ "pipeline-depth" ] ~doc:"Kernel in-flight sequencer rounds.")
  in
  let duration_t =
    Arg.(
      value & opt int 2_000
      & info [ "duration" ] ~doc:"Measured window per trial, simulated ms.")
  in
  let warmup_t =
    Arg.(
      value & opt int 500
      & info [ "warmup" ]
          ~doc:"Warmup per trial, simulated ms (excluded from figures).")
  in
  let seed_t = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Trial seed.") in
  let slo_t =
    Arg.(
      value & opt float 50.0
      & info [ "slo-p99-ms" ] ~doc:"The SLO: trial p99 must stay under this.")
  in
  let min_completion_t =
    Arg.(
      value & opt float 0.95
      & info [ "min-completion" ]
          ~doc:"And completed/attempted must reach this.")
  in
  let rate_t =
    Arg.(
      value & opt (some float) None
      & info [ "rate" ]
          ~doc:
            "Run one open-loop trial at this offered rate (ops/s) instead \
             of searching for the knee.")
  in
  let lo_t =
    Arg.(
      value & opt float 50.0
      & info [ "lo" ] ~doc:"Floor rate the saturation search starts from.")
  in
  let tol_t =
    Arg.(
      value & opt float 0.08
      & info [ "tol" ] ~doc:"Relative bracket width the search converges to.")
  in
  let max_probes_t =
    Arg.(
      value & opt int 14
      & info [ "max-probes" ] ~doc:"Trial budget for the search.")
  in
  let sweep_t =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Run the full shard-count x fabric sweep (the bench loadgen \
             target) instead of a single configuration; --shards/--net etc. \
             are ignored.")
  in
  let smoke_t =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Tiny windows, key space and probe budget (CI parameters).")
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "With --sweep: validate and write BENCH_loadgen.json.  \
             Otherwise: also print the outcome as a JSON object.")
  in
  let run mix txn_ratio txn_size keys value_dist shards hosts routers
      replication wire_mbps max_batch pipeline_depth (fabric, net) duration_ms
      warmup_ms seed slo_p99 min_completion rate lo tol max_probes sweep smoke
      json =
    let mix =
      match L.Mix.of_string mix with
      | Ok m -> m
      | Error e ->
          Printf.eprintf "%s\n" e;
          exit 2
    in
    let mix =
      if txn_ratio > 0.0 then L.Mix.with_txn mix ~size_hint:txn_size txn_ratio
      else mix
    in
    let value_dist =
      match L.Dist.of_string value_dist with
      | Ok d -> d
      | Error e ->
          Printf.eprintf "%s\n" e;
          exit 2
    in
    let slo = { L.Saturation.p99_ms = slo_p99; min_completion } in
    (* --smoke clamps toward the CI parameters wherever the flag is
       still at its default-ish scale. *)
    let duration_ms = if smoke then min duration_ms 400 else duration_ms in
    let warmup_ms = if smoke then min warmup_ms 100 else warmup_ms in
    let keys = if smoke then min keys 200 else keys in
    let max_probes = if smoke then min max_probes 8 else max_probes in
    let tol = if smoke then Float.max tol 0.25 else tol in
    let lo = if smoke then Float.max lo 100.0 else lo in
    if sweep then begin
      let params =
        {
          L.Report.slo;
          mix;
          keys;
          value_dist;
          txn_size;
          duration_ms;
          warmup_ms;
          replication;
          wire_mbps;
          max_batch;
          pipeline_depth;
          lo;
          tol;
          max_probes;
          seed;
        }
      in
      L.Report.print_header ();
      let rows =
        L.Report.sweep ~progress:L.Report.print_row ~smoke params
      in
      if json then
        L.Report.write_json ~path:"BENCH_loadgen.json" params rows
    end
    else begin
      let cfg =
        {
          L.Driver.shards;
          hosts;
          routers;
          replication;
          wire_mbps;
          net = (fabric, net);
          max_batch;
          batch_delay_us = 500;
          pipeline_depth;
          mix;
          keys;
          value_dist;
          txn_size;
          duration = Amoeba_sim.Time.ms duration_ms;
          warmup = Amoeba_sim.Time.ms warmup_ms;
          seed;
        }
      in
      match rate with
      | Some rate ->
          let t = L.Driver.run cfg ~rate in
          Format.printf "%a@." L.Driver.pp_trial t;
          if json then
            print_string
              (Bench_json.to_string
                 (Bench_json.Obj
                    [
                      ("offered", Bench_json.Float t.L.Driver.offered);
                      ("attempted", Bench_json.Int t.L.Driver.attempted);
                      ("completed", Bench_json.Int t.L.Driver.completed);
                      ("failed", Bench_json.Int t.L.Driver.failed);
                      ("throughput", Bench_json.Float t.L.Driver.throughput);
                      ("completion", Bench_json.Float t.L.Driver.completion);
                      ("p50_ms", Bench_json.Float t.L.Driver.p50_ms);
                      ("p95_ms", Bench_json.Float t.L.Driver.p95_ms);
                      ("p99_ms", Bench_json.Float t.L.Driver.p99_ms);
                    ]))
      | None ->
          let measure rate =
            let t = L.Driver.run cfg ~rate in
            {
              L.Saturation.m_p99_ms = t.L.Driver.p99_ms;
              m_completion = t.L.Driver.completion;
              m_throughput = t.L.Driver.throughput;
            }
          in
          let o = L.Saturation.search ~lo ~tol ~max_probes ~slo measure in
          Format.printf "%a@." L.Saturation.pp_outcome o;
          if json then
            print_string
              (Bench_json.to_string
                 (Bench_json.Obj
                    [
                      ("knee_ops_per_sec", Bench_json.Float o.L.Saturation.knee);
                      ( "throughput_at_knee",
                        Bench_json.Float o.L.Saturation.throughput_at_knee );
                      ( "probes",
                        Bench_json.Int (List.length o.L.Saturation.probes) );
                      ("converged", Bench_json.Bool o.L.Saturation.converged);
                    ]))
    end
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "YCSB-style open-loop load generation: drive a mixed workload at a \
          fixed offered rate, or binary-search the highest rate that meets \
          a tail-latency SLO (the saturation knee), per configuration or as \
          a full shard x fabric sweep.")
    Term.(
      const run $ mix_t $ txn_ratio_t $ txn_size_t $ keys_t $ value_dist_t
      $ shards_t $ hosts_t $ routers_t $ replication_t $ wire_t $ max_batch_t
      $ pipeline_depth_t $ net_t $ duration_t $ warmup_t $ seed_t $ slo_t
      $ min_completion_t $ rate_t $ lo_t $ tol_t $ max_probes_t $ sweep_t
      $ smoke_t $ json_t)

let main =
  Cmd.group
    (Cmd.info "amoeba" ~version:"1.0"
       ~doc:"Explore the reproduced Amoeba group communication system.")
    [
      delay_cmd;
      throughput_cmd;
      multigroup_cmd;
      trace_cmd;
      costs_cmd;
      rpc_cmd;
      chaos_cmd;
      serve_cmd;
      workload_cmd;
      migration_chaos_cmd;
      loadgen_cmd;
    ]

let () = exit (Cmd.eval main)
