(* The sharded service layer end to end: a key-value store partitioned
   over four totally-ordered groups, each with its own sequencer on a
   distinct machine — the escape from the paper's single-sequencer
   throughput ceiling (conclusion 1).

   A shard map places the groups, a service deploys one Rsm replica
   group per shard behind RPC endpoints, and a router hashes each
   request to its shard, pipelining and failing over on crashes.  We
   write through the router, kill one shard's serving follower — which
   is also that group's accept acker, so the sequencer's pending
   writes stall until its heal heartbeat expels the corpse — keep
   writing through the recovery window, and show every shard's
   surviving replicas still agree.

   Replication is 3, not 2: expelling a dead member needs a majority
   of the old membership to survive, and a 2-member group has no
   majority without the member it is trying to expel.

   Run with: dune exec examples/sharded_kv.exe *)

open Amoeba_sim
open Amoeba_net
open Amoeba_harness
open Amoeba_service

let shards = 4
let hosts = 8

let () =
  let map =
    Shard_map.create ~shards ~replication:3 ~hosts:(List.init hosts Fun.id) ()
  in
  Format.printf "%a@." Shard_map.pp map;
  (* One extra machine for the router (a client: it joins no group). *)
  let cl = Cluster.create ~seed:42 ~n:(hosts + 1) () in
  Cluster.spawn cl (fun () ->
      let svc = Service.deploy cl ~map ~resilience:1 () in
      let router =
        Router.create (Cluster.flip cl hosts) ~map
          ~endpoints:(Service.endpoints svc) ()
      in
      print_endline "-- 40 writes through the router";
      for i = 1 to 40 do
        match Router.put router (Printf.sprintf "user-%d" i) "alive" with
        | Router.Written -> ()
        | _ -> failwith "put failed"
      done;
      (* Kill a machine the router is actually serving from: shard 0's
         first follower.  It doubles as the group's accept acker, so
         this exercises both failovers at once — the router's (suspect
         the host, move to the next replica) and the sequencer's (heal
         heartbeat notices the stalled stable frontier and expels the
         dead member). *)
      let victim =
        match Shard_map.replica_hosts map 0 with
        | _seq :: follower :: _ -> follower
        | _ -> assert false
      in
      Printf.printf "-- crashing m%d (shard 0's serving follower)\n" victim;
      Machine.crash (Cluster.machine cl victim);
      print_endline "-- 40 more writes: the router must fail over";
      for i = 41 to 80 do
        match Router.put router (Printf.sprintf "user-%d" i) "alive" with
        | Router.Written -> ()
        | Router.Failed m -> failwith ("post-crash put failed: " ^ m)
        | _ -> failwith "post-crash put failed"
      done;
      Engine.sleep cl.Cluster.engine (Time.ms 500);
      let st = Router.stats router in
      Printf.printf
        "-- router: %d ops, %d retries, %d failovers, %d dead probes\n"
        st.Router.ops st.Router.retries st.Router.failovers
        st.Router.probes_dead;
      (* A key per shard, read back through the router. *)
      Printf.printf "-- user-1 is %s\n"
        (match Router.get router "user-1" with
        | Router.Value v -> v
        | _ -> "lost?!");
      for s = 0 to shards - 1 do
        Printf.printf "-- shard %d applied:" s;
        List.iter
          (fun (host, a) -> Printf.printf " m%d=%d" host a)
          (Service.applied svc s);
        print_newline ()
      done);
  Cluster.run ~until:(Time.sec 30) cl
